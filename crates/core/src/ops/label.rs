//! Operation ② — contig labeling via **bidirectional list ranking** (the BPPA
//! of Section IV-B, Figure 11).
//!
//! The goal is to mark every vertex of each *maximal unambiguous path* with a
//! unique label so that the contig-merging operation can group them. The
//! algorithm:
//!
//! 1. **Superstep 0** — every ambiguous (⟨m-n⟩) vertex broadcasts its ID to its
//!    neighbours and votes to halt for good.
//! 2. **Superstep 1** — every unambiguous vertex initialises its *ID pair*: one
//!    pointer per side, holding the neighbour on that side, or its own ID with
//!    the *flip* bit set when that side has no unambiguous neighbour (i.e. the
//!    vertex is a contig end on that side). It then sends a request along every
//!    unfinished pointer.
//! 3. **Doubling rounds** — requests (odd supersteps) and responses (even
//!    supersteps) alternate; each response carries the responder's *other*
//!    pointer, so the distance covered by every pointer doubles per round. A
//!    pointer is finished once it holds a flipped contig-end ID.
//!    `O(log ℓ_max)` rounds suffice.
//! 4. **Cycle fallback** — an unambiguous cycle never reaches a contig end.
//!    Every path vertex finishes within the BPPA's `O(log n)` superstep budget,
//!    so if unfinished vertices remain once that budget is exhausted they must
//!    lie on cycles; the job stops and the remaining vertices are labelled by
//!    the simplified S-V algorithm (the smallest vertex ID in the cycle),
//!    exactly as the paper prescribes.
//!
//! The final label of a vertex is the smaller of its two contig-end IDs.

use crate::ids::{flip, is_flipped, unflip};
use crate::node::{AsmNode, VertexType};
use crate::polarity::Side;
use ppa_pregel::aggregate::Count;
use ppa_pregel::algorithms::connected_components;
use ppa_pregel::{
    Context, ExecCtx, Metrics, PregelConfig, SpillCodec, SpillCodecs, VertexProgram, VertexSet,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of a contig-labeling run (either algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelOutcome {
    /// `(vertex id, label)` for every unambiguous vertex. Vertices sharing a
    /// label belong to the same maximal unambiguous path (or cycle).
    pub labels: Vec<(u64, u64)>,
    /// IDs of ambiguous (⟨m-n⟩) vertices, which receive no label.
    pub ambiguous: Vec<u64>,
    /// Combined Pregel metrics of the labeling (including the S-V cycle
    /// fallback if it ran).
    pub metrics: Metrics,
    /// Whether the S-V fallback was needed (unambiguous cycles present).
    pub used_cycle_fallback: bool,
}

const LEFT: usize = 0;
const RIGHT: usize = 1;

/// Per-vertex state of the list-ranking program.
#[derive(Debug, Clone)]
pub(crate) struct LrState {
    vtype: VertexType,
    /// Neighbour on each side (`[left, right]`), if any.
    neighbor: [Option<u64>; 2],
    /// All neighbours — used by ambiguous vertices for the superstep-0
    /// broadcast (an ⟨m-n⟩ vertex can have more than one neighbour per side).
    broadcast: Vec<u64>,
    /// Current pointer per side; flipped IDs mark a reached contig end.
    ptr: [u64; 2],
    /// Whether the pointer on each side has reached a contig end.
    done: [bool; 2],
}

impl LrState {
    fn fully_done(&self) -> bool {
        self.done[0] && self.done[1]
    }
}

// Spill codecs for the labeling job's state and messages, so list ranking can
// opt into the engine's out-of-core execution (partition sealing and shuffle
// run spilling) when a `SpillPolicy` cap is installed. Per the panic-free
// codec contract, `decode` rejects malformed input with `None`.

impl SpillCodec for LrState {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.vtype as u8).encode(buf);
        for n in &self.neighbor {
            match n {
                Some(id) => {
                    1u8.encode(buf);
                    id.encode(buf);
                }
                None => 0u8.encode(buf),
            }
        }
        (self.broadcast.len() as u64).encode(buf);
        for id in &self.broadcast {
            id.encode(buf);
        }
        for p in &self.ptr {
            p.encode(buf);
        }
        for d in &self.done {
            d.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let vtype = match u8::decode(buf)? {
            0 => VertexType::Isolated,
            1 => VertexType::One,
            2 => VertexType::OneOne,
            3 => VertexType::Branch,
            _ => return None,
        };
        let mut neighbor = [None, None];
        for slot in &mut neighbor {
            *slot = match u8::decode(buf)? {
                0 => None,
                1 => Some(u64::decode(buf)?),
                _ => return None,
            };
        }
        let len = u64::decode(buf)? as usize;
        if buf.len() < len.checked_mul(8)? {
            return None;
        }
        let mut broadcast = Vec::with_capacity(len);
        for _ in 0..len {
            broadcast.push(u64::decode(buf)?);
        }
        let ptr = [u64::decode(buf)?, u64::decode(buf)?];
        let done = [bool::decode(buf)?, bool::decode(buf)?];
        Some(LrState {
            vtype,
            neighbor,
            broadcast,
            ptr,
            done,
        })
    }
}

impl SpillCodec for LrMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LrMsg::Ambiguous(id) => {
                0u8.encode(buf);
                id.encode(buf);
            }
            LrMsg::Request(id) => {
                1u8.encode(buf);
                id.encode(buf);
            }
            LrMsg::Response { responder, other } => {
                2u8.encode(buf);
                responder.encode(buf);
                other.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(LrMsg::Ambiguous(u64::decode(buf)?)),
            1 => Some(LrMsg::Request(u64::decode(buf)?)),
            2 => Some(LrMsg::Response {
                responder: u64::decode(buf)?,
                other: u64::decode(buf)?,
            }),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum LrMsg {
    /// Superstep 0: "I am ambiguous" broadcast (carries the sender ID).
    Ambiguous(u64),
    /// "Send me your other pointer" (carries the requester ID).
    Request(u64),
    /// Reply to a request: the responder's ID and its other pointer.
    Response { responder: u64, other: u64 },
}

struct LrProgram {
    /// Superstep budget: `2⌈log₂(n+1)⌉ + slack`. Any vertex on a path finishes
    /// within this many supersteps; unfinished vertices past the budget are on
    /// cycles.
    superstep_budget: usize,
    stalled: AtomicBool,
}

impl LrProgram {
    fn new(num_vertices: usize) -> LrProgram {
        let log = (usize::BITS - num_vertices.next_power_of_two().leading_zeros()) as usize;
        LrProgram {
            superstep_budget: 2 * (log + 2) + 4,
            stalled: AtomicBool::new(false),
        }
    }
}

impl VertexProgram for LrProgram {
    type Id = u64;
    type Value = LrState;
    type Message = LrMsg;
    type Aggregate = Count;

    fn spill_codecs() -> Option<SpillCodecs<Self>> {
        Some(SpillCodecs::new())
    }

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: u64,
        value: &mut LrState,
        messages: &mut [LrMsg],
    ) {
        let superstep = ctx.superstep();
        if superstep == 0 {
            if value.vtype == VertexType::Branch {
                for i in 0..value.broadcast.len() {
                    let n = value.broadcast[i];
                    ctx.send_message(n, LrMsg::Ambiguous(id));
                }
                // Ambiguous vertices take no further part; unambiguous ones
                // stay active so that superstep 1 initialises them.
                ctx.vote_to_halt();
            }
            return;
        }

        if value.vtype == VertexType::Branch {
            ctx.vote_to_halt();
            return;
        }

        if superstep == 1 {
            // Initialise the ID pair from the superstep-0 broadcasts.
            let ambiguous_neighbors: Vec<u64> = messages
                .iter()
                .filter_map(|m| {
                    if let LrMsg::Ambiguous(a) = m {
                        Some(*a)
                    } else {
                        None
                    }
                })
                .collect();
            for side in [LEFT, RIGHT] {
                match value.neighbor[side] {
                    Some(n) if !ambiguous_neighbors.contains(&n) => {
                        value.ptr[side] = n;
                        value.done[side] = false;
                    }
                    _ => {
                        value.ptr[side] = flip(id);
                        value.done[side] = true;
                    }
                }
            }
        } else {
            // Responses first: requests are answered from the post-update
            // snapshot (requests and responses arrive in different supersteps,
            // so the order only matters for robustness, not semantics).
            for msg in messages.iter() {
                if let LrMsg::Response { responder, other } = msg {
                    for side in [LEFT, RIGHT] {
                        if !value.done[side] && value.ptr[side] == *responder {
                            value.ptr[side] = *other;
                            if is_flipped(*other) {
                                value.done[side] = true;
                            }
                        }
                    }
                }
            }
        }

        // Answer requests: hand out the pointer that does not lead back to the
        // requester. Because every pointer advances in lockstep (one doubling
        // per round), exactly one of the two pointers leads back to the
        // requester — see the module documentation.
        for msg in messages.iter() {
            let LrMsg::Request(from) = msg else {
                continue;
            };
            let from = *from;
            let left_matches = unflip(value.ptr[LEFT]) == from;
            let right_matches = unflip(value.ptr[RIGHT]) == from;
            let reply = match (left_matches, right_matches) {
                (true, false) => Some(value.ptr[RIGHT]),
                (false, true) => Some(value.ptr[LEFT]),
                (true, true) => None, // 2-cycle: no direction leads away.
                (false, false) => {
                    // Defensive: should not happen for well-formed paths;
                    // prefer a finished pointer so the requester terminates.
                    Some(if is_flipped(value.ptr[LEFT]) {
                        value.ptr[LEFT]
                    } else {
                        value.ptr[RIGHT]
                    })
                }
            };
            if let Some(other) = reply {
                ctx.send_message(
                    from,
                    LrMsg::Response {
                        responder: id,
                        other,
                    },
                );
            }
        }

        // Request phase on odd supersteps.
        if superstep % 2 == 1 && !value.fully_done() {
            ctx.aggregate(Count(1));
            for side in [LEFT, RIGHT] {
                if !value.done[side] {
                    ctx.send_message(value.ptr[side], LrMsg::Request(id));
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn should_terminate(&self, aggregate: &Count, superstep: usize) -> bool {
        // Only request phases (odd supersteps) carry the unfinished count.
        if superstep.is_multiple_of(2) {
            return false;
        }
        if superstep >= self.superstep_budget && aggregate.0 > 0 {
            // Path vertices are guaranteed to finish within the budget, so the
            // remaining unfinished vertices lie on unambiguous cycles.
            self.stalled.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Builds the per-vertex labeling state from the assembly nodes.
pub(crate) fn build_lr_states(nodes: &[AsmNode]) -> impl Iterator<Item = (u64, LrState)> + '_ {
    nodes.iter().map(|node| {
        let vtype = node.vertex_type();
        let left = node.sole_edge_on(Side::Left).map(|e| e.neighbor);
        let right = node.sole_edge_on(Side::Right).map(|e| e.neighbor);
        let broadcast = if vtype == VertexType::Branch {
            node.neighbor_ids()
        } else {
            vec![]
        };
        (
            node.id,
            LrState {
                vtype,
                neighbor: [left, right],
                broadcast,
                ptr: [flip(node.id), flip(node.id)],
                done: [true, true],
            },
        )
    })
}

/// Labels every maximal unambiguous path using bidirectional list ranking,
/// falling back to the simplified S-V algorithm for unambiguous cycles.
/// (Private worker pool; inside a workflow, prefer [`label_contigs_lr_on`].)
pub fn label_contigs_lr(nodes: &[AsmNode], workers: usize) -> LabelOutcome {
    label_contigs_lr_on(&ExecCtx::new(workers), nodes)
}

/// [`label_contigs_lr`] on a caller-provided execution context: the list-
/// ranking job and its S-V cycle fallback both run on the context's
/// persistent pool (worker count = pool size).
pub fn label_contigs_lr_on(ctx: &ExecCtx, nodes: &[AsmNode]) -> LabelOutcome {
    let config = PregelConfig::with_workers(ctx.workers())
        .max_supersteps(4_000)
        .exec_ctx(ctx.clone());
    let program = LrProgram::new(nodes.len());
    let mut set: VertexSet<u64, LrState> =
        VertexSet::from_pairs(config.workers, build_lr_states(nodes));

    let mut metrics = ppa_pregel::run(&program, &config, &mut set);
    let stalled = program.stalled.load(Ordering::Relaxed);

    let mut labels: Vec<(u64, u64)> = Vec::new();
    let mut ambiguous: Vec<u64> = Vec::new();
    let mut unresolved: Vec<(u64, LrState)> = Vec::new();
    for (id, state) in set.into_pairs() {
        match state.vtype {
            VertexType::Branch => ambiguous.push(id),
            _ if state.fully_done() => {
                let label = unflip(state.ptr[LEFT]).min(unflip(state.ptr[RIGHT]));
                labels.push((id, label));
            }
            _ => unresolved.push((id, state)),
        }
    }

    // S-V fallback for unambiguous cycles (and any vertex the stall left
    // unresolved): label each with the smallest vertex ID of its component.
    let used_cycle_fallback = stalled || !unresolved.is_empty();
    if !unresolved.is_empty() {
        let members: std::collections::HashSet<u64> =
            unresolved.iter().map(|(id, _)| *id).collect();
        let adjacency: Vec<(u64, Vec<u64>)> = unresolved
            .iter()
            .map(|(id, state)| {
                let nbrs: Vec<u64> = state
                    .neighbor
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|n| members.contains(n))
                    .collect();
                (*id, nbrs)
            })
            .collect();
        let (cc, sv_metrics) = connected_components(adjacency, &config);
        metrics.absorb(&sv_metrics);
        labels.extend(cc);
    }

    LabelOutcome {
        labels,
        ambiguous,
        metrics,
        used_cycle_fallback,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ids::kmer_id;
    use crate::node::Edge;
    use crate::ops::construct::{build_dbg, ConstructConfig};
    use crate::polarity::{Direction, Polarity};
    use ppa_seq::{FastxRecord, Kmer, ReadSet};
    use std::collections::{HashMap, HashSet};

    pub(crate) fn nodes_from_reads(seqs: &[&str], k: usize) -> Vec<AsmNode> {
        let reads = ReadSet::from_records(
            seqs.iter()
                .enumerate()
                .map(|(i, s)| FastxRecord::new_fasta(format!("r{i}"), s.as_bytes().to_vec()))
                .collect(),
        );
        build_dbg(
            &reads,
            &ConstructConfig {
                k,
                min_coverage: 0,
                batch_size: 4,
            },
            2,
        )
        .into_nodes()
    }

    /// Groups labels into sets of vertex IDs.
    pub(crate) fn groups_of(outcome: &LabelOutcome) -> Vec<HashSet<u64>> {
        let mut by_label: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (id, label) in &outcome.labels {
            by_label.entry(*label).or_default().insert(*id);
        }
        by_label.into_values().collect()
    }

    /// Union-find oracle over unambiguous vertices only.
    pub(crate) fn unambiguous_component_oracle(nodes: &[AsmNode]) -> Vec<Vec<u64>> {
        let unambiguous: HashSet<u64> = nodes
            .iter()
            .filter(|n| n.vertex_type() != VertexType::Branch)
            .map(|n| n.id)
            .collect();
        let mut parent: HashMap<u64, u64> = unambiguous.iter().map(|&v| (v, v)).collect();
        fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
            let p = parent[&x];
            if p == x {
                x
            } else {
                let r = find(parent, p);
                parent.insert(x, r);
                r
            }
        }
        for n in nodes {
            if !unambiguous.contains(&n.id) {
                continue;
            }
            for e in n.real_edges() {
                if unambiguous.contains(&e.neighbor) {
                    let (a, b) = (find(&mut parent, n.id), find(&mut parent, e.neighbor));
                    if a != b {
                        parent.insert(a.max(b), a.min(b));
                    }
                }
            }
        }
        let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
        for &v in &unambiguous {
            groups.entry(find(&mut parent, v)).or_default().push(v);
        }
        let mut out: Vec<Vec<u64>> = groups
            .into_values()
            .map(|mut g| {
                g.sort_unstable();
                g
            })
            .collect();
        out.sort();
        out
    }

    pub(crate) fn groups_sorted(outcome: &LabelOutcome) -> Vec<Vec<u64>> {
        let mut got: Vec<Vec<u64>> = groups_of(outcome)
            .iter()
            .map(|g| {
                let mut v: Vec<u64> = g.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        got.sort();
        got
    }

    #[test]
    fn single_path_gets_one_label() {
        // Figure 9 / 11: the seven-vertex path has no ambiguous vertex, so all
        // seven vertices share one label.
        let nodes = nodes_from_reads(&["CTGCCGT", "CCGTACA"], 4);
        assert_eq!(nodes.len(), 7);
        let outcome = label_contigs_lr(&nodes, 3);
        assert!(outcome.ambiguous.is_empty());
        assert_eq!(outcome.labels.len(), 7);
        let groups = groups_of(&outcome);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 7);
        assert!(!outcome.used_cycle_fallback);
        assert!(outcome.metrics.converged);
        // Doubling: 7 vertices need ~3 rounds of 2 supersteps plus setup.
        assert!(
            outcome.metrics.supersteps <= 14,
            "supersteps = {}",
            outcome.metrics.supersteps
        );
        // The label is the smaller of the two end IDs (paper: "the smaller
        // contig-end vertex's ID").
        let end_ids: Vec<u64> = nodes
            .iter()
            .filter(|n| n.vertex_type() == VertexType::One)
            .map(|n| n.id)
            .collect();
        let expected_label = *end_ids.iter().min().unwrap();
        assert!(outcome.labels.iter().all(|(_, l)| *l == expected_label));
    }

    #[test]
    fn fork_splits_labels_at_ambiguous_vertex() {
        // Two reads diverge after a shared prefix; the fork vertex is ⟨m-n⟩ and
        // must not be labelled, and the branches get distinct labels.
        let nodes = nodes_from_reads(&["TTACTTGATCCG", "TTACTTGAACGG"], 5);
        let outcome = label_contigs_lr(&nodes, 2);
        assert!(
            !outcome.ambiguous.is_empty(),
            "the fork must create ambiguous vertices"
        );
        let groups = groups_of(&outcome);
        assert!(
            groups.len() >= 2,
            "expected at least two labelled paths, got {}",
            groups.len()
        );
        // Labels plus ambiguous vertices cover every vertex exactly once.
        let labelled: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(labelled + outcome.ambiguous.len(), nodes.len());
        // Groups must match the connected components of the unambiguous subgraph.
        assert_eq!(
            groups_sorted(&outcome),
            unambiguous_component_oracle(&nodes)
        );
    }

    #[test]
    fn labels_agree_with_connected_components_oracle() {
        let nodes = nodes_from_reads(
            &[
                "ACCTGACCGTTAGCAT",
                "TTAGCATCCGGATACC",
                "GGATACCACCTGACC",
                "TGCTAAGGTATCCGGA",
            ],
            5,
        );
        let outcome = label_contigs_lr(&nodes, 3);
        assert_eq!(
            groups_sorted(&outcome),
            unambiguous_component_oracle(&nodes)
        );
    }

    /// Builds a synthetic ring of `n` unambiguous vertices (each with one edge
    /// per side), which is exactly the case that defeats list ranking.
    pub(crate) fn synthetic_cycle(n: usize) -> Vec<AsmNode> {
        // Generate n distinct canonical 6-mers deterministically.
        let mut kmers: Vec<Kmer> = Vec::new();
        let mut packed = 0u64;
        while kmers.len() < n {
            packed += 37;
            if let Ok(k) = Kmer::from_packed(packed, 6) {
                if k.is_canonical() && !kmers.contains(&k) {
                    kmers.push(k);
                }
            }
        }
        let ids: Vec<u64> = kmers.iter().map(kmer_id).collect();
        kmers
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let mut node = AsmNode::new_kmer(*k);
                let next = ids[(i + 1) % n];
                let prev = ids[(i + n - 1) % n];
                // Next on the right, previous on the left.
                node.push_edge(Edge {
                    neighbor: next,
                    direction: Direction::Out,
                    polarity: Polarity::LL,
                    coverage: 3,
                });
                node.push_edge(Edge {
                    neighbor: prev,
                    direction: Direction::In,
                    polarity: Polarity::LL,
                    coverage: 3,
                });
                node
            })
            .collect()
    }

    #[test]
    fn cycle_falls_back_to_sv() {
        let nodes = synthetic_cycle(12);
        assert!(nodes.iter().all(|n| n.vertex_type() == VertexType::OneOne));
        let outcome = label_contigs_lr(&nodes, 2);
        assert!(
            outcome.used_cycle_fallback,
            "cycles require the S-V fallback"
        );
        let groups = groups_of(&outcome);
        assert_eq!(groups.len(), 1, "the whole cycle is one contig");
        assert_eq!(groups[0].len(), nodes.len());
        // The cycle label is the smallest vertex ID in the cycle.
        let min_id = nodes.iter().map(|n| n.id).min().unwrap();
        assert!(outcome.labels.iter().all(|(_, l)| *l == min_id));
    }

    #[test]
    fn mixed_path_and_cycle() {
        // A path (from reads) plus a synthetic disjoint cycle: the path must be
        // labelled by list ranking, the cycle by the fallback, and the groups
        // must still match the component oracle.
        let mut nodes = nodes_from_reads(&["CTGCCGT", "CCGTACA"], 4);
        nodes.extend(synthetic_cycle(8));
        let outcome = label_contigs_lr(&nodes, 3);
        assert!(outcome.used_cycle_fallback);
        assert_eq!(
            groups_sorted(&outcome),
            unambiguous_component_oracle(&nodes)
        );
    }

    #[test]
    fn empty_input() {
        let outcome = label_contigs_lr(&[], 2);
        assert!(outcome.labels.is_empty());
        assert!(outcome.ambiguous.is_empty());
        assert!(outcome.metrics.converged);
    }

    #[test]
    fn two_vertex_path() {
        let nodes = nodes_from_reads(&["ACGGTC"], 5);
        assert_eq!(nodes.len(), 2);
        let outcome = label_contigs_lr(&nodes, 1);
        assert_eq!(groups_of(&outcome).len(), 1);
        assert_eq!(outcome.labels.len(), 2);
    }
}
