//! Operation ② (alternative) — contig labeling via the **simplified S-V**
//! connected-components algorithm.
//!
//! The paper offers two interchangeable ways to label maximal unambiguous
//! paths: bidirectional list ranking (see [`super::label`]) and running the
//! simplified Shiloach–Vishkin algorithm over the subgraph induced by the
//! unambiguous vertices, so that every vertex is labelled with the smallest
//! vertex ID of its path (Section IV-B). Both produce the same grouping; the
//! paper's Tables II and III compare their superstep/message/runtime costs,
//! which is why this variant exists as a separately measurable operation.
//!
//! The implementation reuses the generic [`connected_components`] PPA from the
//! framework crate: after the same superstep-0-style identification of
//! ambiguous vertices, the unambiguous subgraph is handed to S-V and the
//! resulting component representative becomes the contig label.

use super::label::LabelOutcome;
use crate::node::{AsmNode, VertexType};
use ppa_pregel::algorithms::connected_components;
use ppa_pregel::{ExecCtx, PregelConfig};
use std::collections::HashSet;

/// Labels every maximal unambiguous path with the smallest vertex ID of the
/// path, using the simplified S-V algorithm. (Private worker pool; inside a
/// workflow, prefer [`label_contigs_sv_on`].)
pub fn label_contigs_sv(nodes: &[AsmNode], workers: usize) -> LabelOutcome {
    label_contigs_sv_on(&ExecCtx::new(workers), nodes)
}

/// [`label_contigs_sv`] on a caller-provided execution context: the S-V job
/// runs on the context's persistent pool (worker count = pool size).
pub fn label_contigs_sv_on(ctx: &ExecCtx, nodes: &[AsmNode]) -> LabelOutcome {
    let config = PregelConfig::with_workers(ctx.workers())
        .max_supersteps(4_000)
        .exec_ctx(ctx.clone());

    let ambiguous: Vec<u64> = nodes
        .iter()
        .filter(|n| n.vertex_type() == VertexType::Branch)
        .map(|n| n.id)
        .collect();
    let ambiguous_set: HashSet<u64> = ambiguous.iter().copied().collect();

    let adjacency: Vec<(u64, Vec<u64>)> = nodes
        .iter()
        .filter(|n| !ambiguous_set.contains(&n.id))
        .map(|n| {
            let nbrs: Vec<u64> = n
                .real_edges()
                .map(|e| e.neighbor)
                .filter(|id| !ambiguous_set.contains(id))
                .collect();
            (n.id, nbrs)
        })
        .collect();

    let (labels, metrics) = connected_components(adjacency, &config);
    LabelOutcome {
        labels,
        ambiguous,
        metrics,
        used_cycle_fallback: false,
    }
}

#[cfg(test)]
mod tests {
    use super::super::label::label_contigs_lr;
    use super::super::label::tests::{
        groups_sorted, nodes_from_reads, unambiguous_component_oracle,
    };
    use super::*;

    #[test]
    fn sv_matches_oracle_on_simple_path() {
        let nodes = nodes_from_reads(&["CTGCCGT", "CCGTACA"], 4);
        let outcome = label_contigs_sv(&nodes, 2);
        assert_eq!(
            groups_sorted(&outcome),
            unambiguous_component_oracle(&nodes)
        );
        assert!(outcome.metrics.converged);
        // S-V labels with the smallest vertex ID of the component.
        let min_id = nodes.iter().map(|n| n.id).min().unwrap();
        assert!(outcome.labels.iter().all(|(_, l)| *l == min_id));
    }

    #[test]
    fn sv_and_lr_produce_identical_groupings() {
        let inputs: Vec<Vec<&str>> = vec![
            vec!["CTGCCGT", "CCGTACA"],
            vec!["TTACTTGATCCG", "TTACTTGAACGG"],
            vec!["ACCTGACCGTTAGCAT", "TTAGCATCCGGATACC", "GGATACCACCTGACC"],
        ];
        for seqs in inputs {
            let nodes = nodes_from_reads(&seqs, 5);
            let lr = label_contigs_lr(&nodes, 2);
            let sv = label_contigs_sv(&nodes, 2);
            assert_eq!(
                groups_sorted(&lr),
                groups_sorted(&sv),
                "LR and S-V must group vertices identically for {seqs:?}"
            );
            let mut lr_amb = lr.ambiguous.clone();
            let mut sv_amb = sv.ambiguous.clone();
            lr_amb.sort_unstable();
            sv_amb.sort_unstable();
            assert_eq!(lr_amb, sv_amb);
        }
    }

    #[test]
    fn sv_handles_cycles_without_fallback() {
        // S-V needs no special casing for cycles, unlike list ranking.
        let nodes = nodes_from_reads(&["CTGCCGT", "CCGTACA"], 4);
        let outcome = label_contigs_sv(&nodes, 2);
        assert!(!outcome.used_cycle_fallback);
    }

    #[test]
    fn sv_costs_more_supersteps_than_lr_on_long_paths() {
        // The motivation for preferring list ranking (Tables II/III): a round
        // of S-V needs more supersteps than a round of list ranking, and it
        // sends messages along every edge every round. Use a repeat-free
        // 300 bp sequence so the whole graph is one long unambiguous path.
        let genome = "CTTGCTAGTCATTATTAGTACGAAGGGTTGTGCTCCGATAGTTGAAAATGTGGTGTTATGCTCACGGCGTGGTGTGTCTTTAACCCCAAGCTATCAATACTGAATAGGCTACATATGTTATACTCCGTGTCGTAAGGATGACGGCTCCGCTACTGGTGGTCTGTCGCCTCAGCCGTTGACCGCAACACCGTGAAGCACGGGTAAGGCAGCAGAAAGGCGAGAACTGCAGGAGAGCGTATTTGCGCAACCCTGAGGGTCTAGAGAGTCCACCTGGGCCTTTACGGAACTATATTGGTTTAA";
        let mut seqs: Vec<String> = Vec::new();
        let window = 20;
        for start in (0..genome.len() - window).step_by(5) {
            seqs.push(genome[start..start + window].to_string());
        }
        seqs.push(genome[genome.len() - window..].to_string());
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let nodes = nodes_from_reads(&refs, 9);
        assert!(
            nodes
                .iter()
                .all(|n| n.vertex_type() != crate::node::VertexType::Branch),
            "the repeat-free genome must not create ambiguous vertices"
        );
        let lr = label_contigs_lr(&nodes, 2);
        let sv = label_contigs_sv(&nodes, 2);
        assert!(!lr.used_cycle_fallback);
        assert_eq!(groups_sorted(&lr), groups_sorted(&sv));
        assert!(
            sv.metrics.supersteps > lr.metrics.supersteps,
            "S-V ({}) should need more supersteps than LR ({})",
            sv.metrics.supersteps,
            lr.metrics.supersteps
        );
        assert!(
            sv.metrics.total_messages > lr.metrics.total_messages,
            "S-V ({}) should send more messages than LR ({})",
            sv.metrics.total_messages,
            lr.metrics.total_messages
        );
    }

    #[test]
    fn sv_empty_input() {
        let outcome = label_contigs_sv(&[], 2);
        assert!(outcome.labels.is_empty());
        assert!(outcome.ambiguous.is_empty());
    }
}
