//! Operation ⑤ — tip removing (Section IV-B).
//!
//! A *tip* is a short dangling path (Figure 5) usually caused by read errors
//! near the end of a read. After contig merging the graph consists of
//! ambiguous k-mer vertices and contig vertices; this operation
//!
//! 1. lets every contig announce itself to its two end k-mer vertices, and
//!    every ambiguous k-mer announce its continued existence to its
//!    neighbours, so that each k-mer can rebuild its adjacency in terms of
//!    surviving k-mers and contig-labelled edges (the paper's supersteps that
//!    "set the adjacency lists of the k-mer vertices");
//! 2. runs the REQUEST/DELETE protocol: every ⟨1⟩-typed k-mer sends a REQUEST
//!    carrying the cumulative sequence length of the dangling path; ⟨1-1⟩
//!    vertices relay it (adding one base plus any contig length minus the k−1
//!    overlap); the ⟨m-n⟩ or ⟨1⟩ vertex at which the request terminates decides
//!    whether the path is short enough to be a tip, and if so sends a DELETE
//!    back along the path, deleting the traversed vertices and contigs;
//! 3. a vertex whose type drops to ⟨1⟩ because of a deletion initiates a new
//!    REQUEST, which implements the paper's multi-phase iteration inside a
//!    single converging Pregel job.

use crate::ids::{is_null, NULL_ID};
use crate::node::{AsmNode, Edge, VertexType};
use crate::polarity::Side;
use ppa_pregel::aggregate::Count;
use ppa_pregel::{Context, ExecCtx, Metrics, PregelConfig, VertexProgram, VertexSet};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Configuration of tip removing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TipConfig {
    /// k-mer size (a k-mer vertex contributes k bases when it starts a path
    /// and 1 base when it extends one).
    pub k: usize,
    /// Maximum total length (in bases) of a dangling path that is considered a
    /// tip and removed (the paper uses 80).
    pub tip_length_threshold: usize,
}

impl Default for TipConfig {
    fn default() -> Self {
        TipConfig {
            k: 31,
            tip_length_threshold: 80,
        }
    }
}

/// Output of tip removing.
#[derive(Debug, Clone)]
pub struct TipOutcome {
    /// Surviving ambiguous k-mer vertices, with adjacency rebuilt in terms of
    /// surviving k-mers and contigs (ready for the next labeling round).
    pub kmers: Vec<AsmNode>,
    /// Surviving contig vertices.
    pub contigs: Vec<AsmNode>,
    /// Number of k-mer vertices deleted.
    pub deleted_kmers: usize,
    /// Number of contig vertices deleted.
    pub deleted_contigs: usize,
    /// Pregel metrics of the tip-removal job.
    pub metrics: Metrics,
}

/// One rebuilt adjacency entry of a k-mer vertex during tip removal.
#[derive(Debug, Clone)]
struct TipAdj {
    /// The k-mer vertex at the other end of this edge (NULL if the edge runs
    /// through a contig whose far end dangles).
    other: u64,
    /// The edge record from this k-mer's perspective (its `neighbor` is the
    /// contig ID for contig-labelled edges, or `other` for direct edges).
    edge: Edge,
    /// The contig sitting on this edge, if any.
    via_contig: Option<u64>,
    /// Extra sequence length contributed by the contig on this edge
    /// (`contig length − (k−1)`), 0 for direct edges.
    extra_len: usize,
    /// Whether this entry has been deleted by the protocol.
    deleted: bool,
}

/// A relayed request remembered so that the DELETE can retrace the path.
#[derive(Debug, Clone)]
struct Pending {
    origin: u64,
    from: u64,
    to: u64,
    via_in: Option<u64>,
    via_out: Option<u64>,
}

#[derive(Debug, Clone)]
enum TipState {
    Kmer {
        node: AsmNode,
        adj: Vec<TipAdj>,
        deleted: bool,
        initiated: bool,
        pending: Vec<Pending>,
    },
    Contig {
        node: AsmNode,
        deleted: bool,
    },
}

#[derive(Debug, Clone)]
enum TipMsg {
    /// "I am a surviving ambiguous k-mer" (superstep 0 → 1).
    KmerPresent { from: u64 },
    /// A contig announcing itself to one of its end k-mers (superstep 0 → 1).
    ContigInfo {
        contig: u64,
        extra_len: usize,
        other_end: u64,
        edge: Edge,
    },
    /// The tip probe.
    Request {
        origin: u64,
        from: u64,
        cum_len: usize,
    },
    /// The deletion wave retracing the probe.
    Delete { origin: u64, from: u64 },
    /// Tells a contig that its edge belongs to a removed tip.
    DeleteContig,
}

struct TipProgram {
    k: usize,
    threshold: usize,
}

/// Classifies a k-mer vertex from its live adjacency entries.
fn live_type(adj: &[TipAdj]) -> VertexType {
    let mut left = 0usize;
    let mut right = 0usize;
    for a in adj.iter().filter(|a| !a.deleted) {
        match a.edge.side() {
            Side::Left => left += 1,
            Side::Right => right += 1,
        }
    }
    match (left, right) {
        (0, 0) => VertexType::Isolated,
        (1, 0) | (0, 1) => VertexType::One,
        (1, 1) => VertexType::OneOne,
        _ => VertexType::Branch,
    }
}

impl TipProgram {
    /// Sends the initial REQUEST of a (newly) ⟨1⟩-typed k-mer vertex.
    fn try_initiate(
        &self,
        ctx: &mut Context<'_, Self>,
        id: u64,
        adj: &[TipAdj],
        initiated: &mut bool,
        pending: &mut Vec<Pending>,
    ) {
        if *initiated || live_type(adj) != VertexType::One {
            return;
        }
        let entry = adj
            .iter()
            .find(|a| !a.deleted)
            .expect("type One has one live entry");
        if is_null(entry.other) || entry.other == id {
            return;
        }
        *initiated = true;
        pending.push(Pending {
            origin: id,
            from: id,
            to: entry.other,
            via_in: None,
            via_out: entry.via_contig,
        });
        ctx.send_message(
            entry.other,
            TipMsg::Request {
                origin: id,
                from: id,
                cum_len: self.k + entry.extra_len,
            },
        );
    }
}

impl VertexProgram for TipProgram {
    type Id = u64;
    type Value = TipState;
    type Message = TipMsg;
    type Aggregate = Count;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: u64,
        value: &mut TipState,
        messages: &mut [TipMsg],
    ) {
        let superstep = ctx.superstep();
        match value {
            TipState::Contig { node, deleted } => {
                if superstep == 0 {
                    // Announce the contig to both end k-mers (Figure 9: a
                    // contig has exactly two neighbour slots, possibly NULL).
                    let extra_len = node.len().saturating_sub(self.k.saturating_sub(1));
                    let real: Vec<&Edge> = node.real_edges().collect();
                    for (idx, e) in real.iter().enumerate() {
                        let other_end = if real.len() == 2 {
                            real[1 - idx].neighbor
                        } else {
                            NULL_ID
                        };
                        // The edge as seen from the neighbouring k-mer: same
                        // polarity, opposite direction, pointing at the contig.
                        let edge = Edge {
                            neighbor: node.id,
                            direction: e.direction.reversed(),
                            polarity: e.polarity,
                            coverage: e.coverage,
                        };
                        ctx.send_message(
                            e.neighbor,
                            TipMsg::ContigInfo {
                                contig: node.id,
                                extra_len,
                                other_end,
                                edge,
                            },
                        );
                    }
                } else {
                    for msg in messages.iter() {
                        if let TipMsg::DeleteContig = msg {
                            if !*deleted {
                                *deleted = true;
                                ctx.aggregate(Count(1));
                            }
                        }
                    }
                }
                ctx.vote_to_halt();
            }
            TipState::Kmer {
                node,
                adj,
                deleted,
                initiated,
                pending,
            } => {
                if superstep == 0 {
                    for e in node.real_edges() {
                        ctx.send_message(e.neighbor, TipMsg::KmerPresent { from: id });
                    }
                    ctx.vote_to_halt();
                    return;
                }
                if superstep == 1 {
                    // Rebuild the adjacency from the announcements.
                    for msg in messages.iter() {
                        match msg {
                            TipMsg::KmerPresent { from } => {
                                for e in node.edges.iter().filter(|e| e.neighbor == *from) {
                                    adj.push(TipAdj {
                                        other: *from,
                                        edge: *e,
                                        via_contig: None,
                                        extra_len: 0,
                                        deleted: false,
                                    });
                                }
                            }
                            TipMsg::ContigInfo {
                                contig,
                                extra_len,
                                other_end,
                                edge,
                            } => {
                                adj.push(TipAdj {
                                    other: *other_end,
                                    edge: *edge,
                                    via_contig: Some(*contig),
                                    extra_len: *extra_len,
                                    deleted: false,
                                });
                            }
                            _ => {}
                        }
                    }
                    // Local check: a dangling contig hanging off this vertex
                    // (its far end is NULL) is itself a tip candidate — the
                    // one-hop case of the REQUEST protocol.
                    for a in adj.iter_mut().filter(|a| !a.deleted) {
                        if let Some(contig) = a.via_contig {
                            if is_null(a.other) {
                                let contig_len = a.extra_len + self.k.saturating_sub(1);
                                if contig_len <= self.threshold {
                                    a.deleted = true;
                                    ctx.send_message(contig, TipMsg::DeleteContig);
                                }
                            }
                        }
                    }
                    self.try_initiate(ctx, id, adj, initiated, pending);
                    ctx.vote_to_halt();
                    return;
                }

                for msg in messages.iter() {
                    match *msg {
                        TipMsg::Request {
                            origin,
                            from,
                            cum_len,
                        } => {
                            if *deleted {
                                continue;
                            }
                            match live_type(adj) {
                                VertexType::OneOne => {
                                    // Relay towards the other neighbour.
                                    let incoming_idx =
                                        adj.iter().position(|a| !a.deleted && a.other == from);
                                    let Some(i_in) = incoming_idx else {
                                        continue;
                                    };
                                    let outgoing_idx = adj
                                        .iter()
                                        .enumerate()
                                        .position(|(i, a)| !a.deleted && i != i_in);
                                    let Some(i_out) = outgoing_idx else {
                                        continue;
                                    };
                                    let out = &adj[i_out];
                                    if is_null(out.other) || out.other == id {
                                        continue;
                                    }
                                    let new_len = cum_len + 1 + out.extra_len;
                                    pending.push(Pending {
                                        origin,
                                        from,
                                        to: out.other,
                                        via_in: adj[i_in].via_contig,
                                        via_out: out.via_contig,
                                    });
                                    ctx.send_message(
                                        out.other,
                                        TipMsg::Request {
                                            origin,
                                            from: id,
                                            cum_len: new_len,
                                        },
                                    );
                                }
                                _ => {
                                    // Terminal vertex: decide whether the path is a tip.
                                    if cum_len <= self.threshold {
                                        ctx.send_message(from, TipMsg::Delete { origin, from: id });
                                        // Delete the edge towards the tip (and the
                                        // contig on it, if any).
                                        for a in
                                            adj.iter_mut().filter(|a| !a.deleted && a.other == from)
                                        {
                                            a.deleted = true;
                                            if let Some(c) = a.via_contig {
                                                ctx.send_message(c, TipMsg::DeleteContig);
                                            }
                                        }
                                        // Removing the edge may turn this vertex into a
                                        // new ⟨1⟩ dead end: start the next phase.
                                        self.try_initiate(ctx, id, adj, initiated, pending);
                                    }
                                }
                            }
                        }
                        TipMsg::Delete { origin, from } => {
                            // Retrace the recorded relay for this origin.
                            if let Some(p) = pending
                                .iter()
                                .find(|p| p.origin == origin && p.to == from)
                                .cloned()
                            {
                                if !*deleted {
                                    *deleted = true;
                                    ctx.aggregate(Count(1));
                                }
                                for c in [p.via_in, p.via_out].into_iter().flatten() {
                                    ctx.send_message(c, TipMsg::DeleteContig);
                                }
                                if p.from != id {
                                    ctx.send_message(p.from, TipMsg::Delete { origin, from: id });
                                }
                            }
                        }
                        _ => {}
                    }
                }
                ctx.vote_to_halt();
            }
        }
    }
}

/// Runs tip removing over the ambiguous k-mer vertices and the contig vertices
/// produced by merging (after bubble filtering). (Private pool of `workers`
/// threads; inside a workflow, prefer [`remove_tips_on`].)
pub fn remove_tips(
    ambiguous_kmers: &[AsmNode],
    contigs: &[AsmNode],
    config: &TipConfig,
    workers: usize,
) -> TipOutcome {
    remove_tips_on(&ExecCtx::new(workers), ambiguous_kmers, contigs, config)
}

/// Runs tip removing on a caller-provided execution context: the underlying
/// Pregel job executes on the context's persistent pool (worker count = pool
/// size).
pub fn remove_tips_on(
    ctx: &ExecCtx,
    ambiguous_kmers: &[AsmNode],
    contigs: &[AsmNode],
    config: &TipConfig,
) -> TipOutcome {
    let pregel_config = PregelConfig::with_workers(ctx.workers())
        .max_supersteps(10_000)
        .exec_ctx(ctx.clone());
    let program = TipProgram {
        k: config.k,
        threshold: config.tip_length_threshold,
    };

    let pairs = ambiguous_kmers
        .iter()
        .map(|n| {
            (
                n.id,
                TipState::Kmer {
                    node: n.clone(),
                    adj: Vec::new(),
                    deleted: false,
                    initiated: false,
                    pending: Vec::new(),
                },
            )
        })
        .chain(contigs.iter().map(|n| {
            (
                n.id,
                TipState::Contig {
                    node: n.clone(),
                    deleted: false,
                },
            )
        }));
    let mut set: VertexSet<u64, TipState> = VertexSet::from_pairs(pregel_config.workers, pairs);
    let metrics = ppa_pregel::run(&program, &pregel_config, &mut set);

    // Collect survivors and rebuild their edges against the surviving set.
    let mut surviving_ids: HashSet<u64> = HashSet::new();
    for (id, state) in set.iter() {
        let alive = match state {
            TipState::Kmer { deleted, .. } => !*deleted,
            TipState::Contig { deleted, .. } => !*deleted,
        };
        if alive {
            surviving_ids.insert(id);
        }
    }

    let mut kmers = Vec::new();
    let mut contig_nodes = Vec::new();
    let mut deleted_kmers = 0usize;
    let mut deleted_contigs = 0usize;
    for (_, state) in set.into_pairs() {
        match state {
            TipState::Kmer {
                node, adj, deleted, ..
            } => {
                if deleted {
                    deleted_kmers += 1;
                    continue;
                }
                let mut rebuilt = AsmNode {
                    id: node.id,
                    seq: node.seq.clone(),
                    coverage: node.coverage,
                    edges: Vec::new(),
                };
                for a in adj.iter().filter(|a| !a.deleted) {
                    if surviving_ids.contains(&a.edge.neighbor) {
                        rebuilt.push_edge(a.edge);
                    }
                }
                kmers.push(rebuilt);
            }
            TipState::Contig { mut node, deleted } => {
                if deleted {
                    deleted_contigs += 1;
                    continue;
                }
                // Neighbours that vanished become NULL dead ends.
                for e in node.edges.iter_mut() {
                    if !e.is_null() && !surviving_ids.contains(&e.neighbor) {
                        e.neighbor = NULL_ID;
                        e.coverage = 0;
                    }
                }
                contig_nodes.push(node);
            }
        }
    }

    TipOutcome {
        kmers,
        contigs: contig_nodes,
        deleted_kmers,
        deleted_contigs,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::bubble::remove_pruned;
    use crate::ops::label::label_contigs_lr;
    use crate::ops::label::tests::nodes_from_reads;
    use crate::ops::merge::{merge_contigs, MergeConfig};

    /// Builds the post-merging graph (ambiguous k-mers + contigs) for a read set.
    fn merged_graph(reads: &[&str], k: usize, merge_tip: usize) -> (Vec<AsmNode>, Vec<AsmNode>) {
        let nodes = nodes_from_reads(reads, k);
        let labels = label_contigs_lr(&nodes, 2);
        let merged = merge_contigs(
            &nodes,
            &labels.labels,
            &MergeConfig {
                k,
                tip_length_threshold: merge_tip,
            },
            2,
        );
        let ambiguous: Vec<AsmNode> = nodes
            .iter()
            .filter(|n| labels.ambiguous.contains(&n.id))
            .cloned()
            .collect();
        (ambiguous, merged.contigs)
    }

    fn tip_cfg(k: usize, threshold: usize) -> TipConfig {
        TipConfig {
            k,
            tip_length_threshold: threshold,
        }
    }

    /// A genome with a short erroneous dangling branch: the main sequence is
    /// covered densely, plus one read that diverges near its end (simulating a
    /// read error that creates a tip, as read ① does in Figure 3/5).
    fn tippy_reads() -> Vec<String> {
        let genome = "ATCGGCTAAGGTCAGCTTAGCCGATACCGGTTAACGGCATGGCTAGCTTAACGGATCGTC";
        let mut reads: Vec<String> = Vec::new();
        for start in (0..genome.len() - 20).step_by(3) {
            reads.push(genome[start..start + 20].to_string());
        }
        reads.push(genome[genome.len() - 20..].to_string());
        // An erroneous read: matches positions 10..24 then diverges.
        let erroneous = format!("{}TTTT", &genome[10..24]);
        reads.push(erroneous);
        reads
    }

    #[test]
    fn short_tip_is_removed() {
        let reads = tippy_reads();
        let refs: Vec<&str> = reads.iter().map(|s| s.as_str()).collect();
        // Keep even short dangling contigs at merge time (threshold 0) so that
        // the tip survives until this operation, then remove it here.
        let (ambiguous, contigs) = merged_graph(&refs, 9, 0);
        assert!(
            !ambiguous.is_empty(),
            "the erroneous read must create a branch"
        );
        assert!(contigs.len() >= 2, "main path plus tip expected");
        let before = contigs.len();
        let out = remove_tips(&ambiguous, &contigs, &tip_cfg(9, 30), 2);
        assert!(
            out.deleted_contigs >= 1 || out.deleted_kmers >= 1,
            "the short dangling branch must be removed"
        );
        assert!(out.contigs.len() < before || out.deleted_kmers > 0);
        assert!(out.metrics.converged);
        // The longest contig (the true genome path) must survive.
        let longest_before = contigs.iter().map(|c| c.len()).max().unwrap();
        let longest_after = out.contigs.iter().map(|c| c.len()).max().unwrap();
        assert_eq!(longest_before, longest_after);
    }

    #[test]
    fn long_dangling_paths_are_kept() {
        let reads = tippy_reads();
        let refs: Vec<&str> = reads.iter().map(|s| s.as_str()).collect();
        let (ambiguous, contigs) = merged_graph(&refs, 9, 0);
        // With a tiny threshold nothing qualifies as a tip.
        let out = remove_tips(&ambiguous, &contigs, &tip_cfg(9, 1), 2);
        assert_eq!(out.deleted_contigs, 0);
        assert_eq!(out.deleted_kmers, 0);
        assert_eq!(out.contigs.len(), contigs.len());
        assert_eq!(out.kmers.len(), ambiguous.len());
    }

    #[test]
    fn clean_graph_is_untouched() {
        // An error-free single path has no ambiguous vertices at all.
        let (ambiguous, contigs) = merged_graph(&["CTGCCGTACA", "GCCGTACAGG"], 4, 0);
        assert!(ambiguous.is_empty());
        let out = remove_tips(&ambiguous, &contigs, &tip_cfg(4, 80), 2);
        assert_eq!(out.deleted_contigs, 0);
        assert_eq!(out.contigs.len(), contigs.len());
    }

    #[test]
    fn kmer_adjacency_is_rebuilt_with_contig_edges() {
        let reads = tippy_reads();
        let refs: Vec<&str> = reads.iter().map(|s| s.as_str()).collect();
        let (ambiguous, contigs) = merged_graph(&refs, 9, 0);
        let out = remove_tips(&ambiguous, &contigs, &tip_cfg(9, 0), 2);
        // No deletions with threshold 0, but adjacency must now reference
        // contigs instead of merged-away unambiguous k-mers.
        let contig_ids: HashSet<u64> = out.contigs.iter().map(|c| c.id).collect();
        let kmer_ids: HashSet<u64> = out.kmers.iter().map(|k| k.id).collect();
        let mut contig_edges = 0usize;
        for kmer in &out.kmers {
            for e in kmer.real_edges() {
                assert!(
                    contig_ids.contains(&e.neighbor) || kmer_ids.contains(&e.neighbor),
                    "edge points to a vertex that no longer exists"
                );
                if contig_ids.contains(&e.neighbor) {
                    contig_edges += 1;
                }
            }
        }
        assert!(
            contig_edges > 0,
            "ambiguous k-mers must link to their contigs"
        );
    }

    #[test]
    fn works_after_bubble_filtering() {
        // Combined error-correction pipeline: bubbles first, then tips.
        let reads = tippy_reads();
        let refs: Vec<&str> = reads.iter().map(|s| s.as_str()).collect();
        let (ambiguous, mut contigs) = merged_graph(&refs, 9, 0);
        let bubbles = crate::ops::bubble::filter_bubbles(
            &contigs,
            &crate::ops::bubble::BubbleConfig {
                max_edit_distance: 5,
            },
            2,
        );
        remove_pruned(&mut contigs, &bubbles.pruned);
        let out = remove_tips(&ambiguous, &contigs, &tip_cfg(9, 30), 2);
        assert!(out.metrics.converged);
    }

    #[test]
    fn empty_input() {
        let out = remove_tips(&[], &[], &TipConfig::default(), 2);
        assert!(out.kmers.is_empty());
        assert!(out.contigs.is_empty());
        assert_eq!(out.deleted_kmers + out.deleted_contigs, 0);
    }
}
