//! Operation ④ — bubble filtering (Section IV-B).
//!
//! A *bubble* is a pair (or group) of contigs that connect the same two
//! ambiguous vertices (Figure 5): one path is the true sequence, the others
//! are usually caused by read errors and have much lower coverage. This
//! operation groups contigs by their unordered pair of ambiguous end
//! neighbours with a mini-MapReduce pass, and inside every group prunes a
//! contig when another contig of the same group is within a user-defined edit
//! distance and has higher coverage.

use crate::node::{AsmNode, NodeSeq};
use crate::polarity::Direction;
use ppa_pregel::mapreduce::{map_reduce_with_metrics_on, Emitter, MapReduceMetrics};
use ppa_pregel::ExecCtx;
use ppa_seq::{banded_edit_distance, DnaString};
use serde::{Deserialize, Serialize};

/// Configuration of bubble filtering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BubbleConfig {
    /// A contig may be pruned only if its edit distance to a higher-coverage
    /// sibling is strictly smaller than this threshold (the paper uses 5).
    pub max_edit_distance: usize,
}

impl Default for BubbleConfig {
    fn default() -> Self {
        BubbleConfig {
            max_edit_distance: 5,
        }
    }
}

/// Output of bubble filtering.
#[derive(Debug, Clone)]
pub struct BubbleOutcome {
    /// IDs of the contigs that were pruned.
    pub pruned: Vec<u64>,
    /// Number of end-pair groups containing more than one contig (bubble
    /// candidates).
    pub candidate_groups: usize,
    /// Mini-MapReduce metrics of the grouping pass.
    pub mapreduce: MapReduceMetrics,
}

/// The value shuffled for every bubble-candidate contig.
#[derive(Debug, Clone)]
struct Candidate {
    id: u64,
    /// Sequence oriented so that it reads from the smaller ambiguous end to
    /// the larger one, making sequences of the same group directly comparable.
    seq: DnaString,
    coverage: u32,
}

/// Runs bubble filtering over the given contig vertices and returns the list
/// of pruned contig IDs. The caller removes them from its node set. (Private
/// pool of `workers` threads; inside a workflow, prefer
/// [`filter_bubbles_on`].)
pub fn filter_bubbles(contigs: &[AsmNode], config: &BubbleConfig, workers: usize) -> BubbleOutcome {
    filter_bubbles_on(&ExecCtx::new(workers), contigs, config)
}

/// Runs bubble filtering on a caller-provided execution context (the worker
/// count is the context's pool size).
pub fn filter_bubbles_on(
    ctx: &ExecCtx,
    contigs: &[AsmNode],
    config: &BubbleConfig,
) -> BubbleOutcome {
    let max_dist = config.max_edit_distance;
    let inputs: Vec<&AsmNode> = contigs.iter().collect();
    let (results, mapreduce) = map_reduce_with_metrics_on(
        ctx,
        inputs,
        |contig: &AsmNode, out: &mut Emitter<'_, (u64, u64), Candidate>| {
            // Only contigs whose both ends attach to (distinct) ambiguous
            // vertices can form a bubble.
            let in_edge = contig.edges.iter().find(|e| e.direction == Direction::In);
            let out_edge = contig.edges.iter().find(|e| e.direction == Direction::Out);
            match (in_edge, out_edge) {
                (Some(a), Some(b)) if !a.is_null() && !b.is_null() && a.neighbor != b.neighbor => {
                    let (lo, hi) = (a.neighbor.min(b.neighbor), a.neighbor.max(b.neighbor));
                    // Orient the sequence lo → hi: the stored sequence reads
                    // in-neighbour → out-neighbour, so if the in-neighbour is
                    // the larger endpoint we compare reverse complements.
                    let seq = if a.neighbor <= b.neighbor {
                        contig.seq.to_dna()
                    } else {
                        contig.seq.to_dna().reverse_complement()
                    };
                    out.emit(
                        (lo, hi),
                        Candidate {
                            id: contig.id,
                            seq,
                            coverage: contig.coverage,
                        },
                    );
                }
                _ => {}
            }
        },
        |_key: &(u64, u64), group: &mut [Candidate], out: &mut Vec<(bool, Vec<u64>)>| {
            if group.len() < 2 {
                out.push((false, Vec::new()));
                return;
            }
            // Deterministic processing order regardless of shuffle order.
            group.sort_by_key(|c| c.id);
            let mut pruned = vec![false; group.len()];
            for i in 0..group.len() {
                if pruned[i] {
                    continue;
                }
                for j in i + 1..group.len() {
                    if pruned[j] {
                        continue;
                    }
                    let close = max_dist > 0
                        && banded_edit_distance(&group[i].seq, &group[j].seq, max_dist - 1)
                            .is_some();
                    if close {
                        if group[i].coverage < group[j].coverage {
                            pruned[i] = true;
                            break; // i is gone; stop comparing it further.
                        } else {
                            pruned[j] = true;
                        }
                    }
                }
            }
            let ids: Vec<u64> = group
                .iter()
                .zip(&pruned)
                .filter(|(_, p)| **p)
                .map(|(c, _)| c.id)
                .collect();
            out.push((true, ids));
        },
    );

    let mut pruned = Vec::new();
    let mut candidate_groups = 0usize;
    for (is_candidate, ids) in results {
        if is_candidate {
            candidate_groups += 1;
        }
        pruned.extend(ids);
    }
    BubbleOutcome {
        pruned,
        candidate_groups,
        mapreduce,
    }
}

/// Convenience helper: removes the pruned contigs from a node list in place.
pub fn remove_pruned(contigs: &mut Vec<AsmNode>, pruned: &[u64]) {
    let set: std::collections::HashSet<u64> = pruned.iter().copied().collect();
    contigs.retain(|c| !set.contains(&c.id));
}

/// Returns `true` if the node is a contig with a sequence (helper for callers
/// mixing k-mer and contig nodes).
pub fn is_contig_node(node: &AsmNode) -> bool {
    matches!(node.seq, NodeSeq::Contig(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::contig_id;
    use crate::node::Edge;
    use crate::polarity::Polarity;
    use ppa_seq::Orientation;

    /// Builds a contig node between two ambiguous endpoints.
    fn contig_between(
        id_ordinal: u32,
        seq: &str,
        coverage: u32,
        in_nbr: u64,
        out_nbr: u64,
    ) -> AsmNode {
        let mut node = AsmNode::new_contig(
            contig_id(0, id_ordinal),
            DnaString::from_ascii(seq).unwrap(),
            coverage,
        );
        node.push_edge(Edge {
            neighbor: in_nbr,
            direction: Direction::In,
            polarity: Polarity::from_labels(Orientation::Forward, Orientation::Forward),
            coverage,
        });
        node.push_edge(Edge {
            neighbor: out_nbr,
            direction: Direction::Out,
            polarity: Polarity::from_labels(Orientation::Forward, Orientation::Forward),
            coverage,
        });
        node
    }

    const END_A: u64 = 100;
    const END_B: u64 = 200;

    fn config() -> BubbleConfig {
        BubbleConfig {
            max_edit_distance: 5,
        }
    }

    #[test]
    fn low_coverage_branch_of_a_bubble_is_pruned() {
        // Figure 5: the main path has high coverage, the erroneous branch
        // differs by one substitution and has low coverage.
        let main = contig_between(1, "GGCACAATTAGG", 40, END_A, END_B);
        let error = contig_between(2, "GGCACTATTAGG", 2, END_A, END_B);
        let out = filter_bubbles(&[main.clone(), error.clone()], &config(), 2);
        assert_eq!(out.pruned, vec![error.id]);
        assert_eq!(out.candidate_groups, 1);
        let mut contigs = vec![main, error];
        remove_pruned(&mut contigs, &out.pruned);
        assert_eq!(contigs.len(), 1);
        assert_eq!(contigs[0].coverage, 40);
    }

    #[test]
    fn distant_sequences_are_not_bubbles() {
        // Two genuinely different paths between the same ambiguous vertices
        // (e.g. a real biological variant) must both survive.
        let a = contig_between(1, "GGCACAATTAGGCCAATT", 40, END_A, END_B);
        let b = contig_between(2, "GGCATTTTGGGGTTTAAC", 3, END_A, END_B);
        let out = filter_bubbles(&[a, b], &config(), 2);
        assert!(out.pruned.is_empty());
        assert_eq!(out.candidate_groups, 1);
    }

    #[test]
    fn contigs_with_different_end_pairs_are_not_compared() {
        let a = contig_between(1, "GGCACAATTAGG", 40, END_A, END_B);
        let b = contig_between(2, "GGCACTATTAGG", 2, END_A, 300);
        let out = filter_bubbles(&[a, b], &config(), 2);
        assert!(out.pruned.is_empty());
        assert_eq!(out.candidate_groups, 0);
    }

    #[test]
    fn reversed_orientation_bubble_is_detected() {
        // The erroneous contig is stored in the opposite direction (its
        // in-neighbour is the larger endpoint), so its sequence must be
        // reverse-complemented before comparison.
        let main = contig_between(1, "GGCACAATTAGG", 40, END_A, END_B);
        let rc_seq = DnaString::from_ascii("GGCACTATTAGG")
            .unwrap()
            .reverse_complement();
        let error = contig_between(2, &rc_seq.to_ascii(), 2, END_B, END_A);
        let out = filter_bubbles(&[main, error], &config(), 2);
        assert_eq!(out.pruned.len(), 1);
    }

    #[test]
    fn dangling_contigs_are_ignored() {
        let mut dangling = contig_between(1, "GGCACAATTAGG", 5, END_A, END_B);
        dangling.edges[1].neighbor = crate::ids::NULL_ID;
        let other = contig_between(2, "GGCACTATTAGG", 40, END_A, END_B);
        let out = filter_bubbles(&[dangling, other], &config(), 2);
        assert!(out.pruned.is_empty());
        assert_eq!(out.candidate_groups, 0);
    }

    #[test]
    fn three_way_bubble_keeps_only_the_best() {
        let best = contig_between(1, "GGCACAATTAGG", 50, END_A, END_B);
        let worse = contig_between(2, "GGCACTATTAGG", 5, END_A, END_B);
        let worst = contig_between(3, "GGCACTATTCGG", 2, END_A, END_B);
        let out = filter_bubbles(&[best.clone(), worse, worst], &config(), 2);
        assert_eq!(out.pruned.len(), 2);
        assert!(!out.pruned.contains(&best.id));
    }

    #[test]
    fn equal_coverage_prunes_exactly_one() {
        let a = contig_between(1, "GGCACAATTAGG", 10, END_A, END_B);
        let b = contig_between(2, "GGCACTATTAGG", 10, END_A, END_B);
        let out = filter_bubbles(&[a, b], &config(), 2);
        assert_eq!(out.pruned.len(), 1);
    }

    #[test]
    fn self_loop_contig_is_ignored() {
        // Both ends attach to the same ambiguous vertex: not a bubble candidate
        // (the paper requires two distinct neighbours nb1 < nb2).
        let a = contig_between(1, "GGCACAATTAGG", 10, END_A, END_A);
        let out = filter_bubbles(&[a], &config(), 2);
        assert!(out.pruned.is_empty());
        assert_eq!(out.candidate_groups, 0);
    }

    #[test]
    fn empty_input() {
        let out = filter_bubbles(&[], &config(), 2);
        assert!(out.pruned.is_empty());
        assert_eq!(out.candidate_groups, 0);
    }

    #[test]
    fn is_contig_node_helper() {
        let c = contig_between(1, "ACGT", 1, END_A, END_B);
        assert!(is_contig_node(&c));
        let k = AsmNode::new_kmer(ppa_seq::Kmer::from_str_exact("ACGTA").unwrap());
        assert!(!is_contig_node(&k));
    }
}
