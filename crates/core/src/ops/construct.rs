//! Operation ① — de Bruijn graph construction (Section IV-B).
//!
//! Two mini-MapReduce phases turn raw reads into k-mer vertices with packed
//! adjacency bitmaps:
//!
//! * **Phase (i)**: every read is split at `N` characters, each ACGT segment is
//!   cut into (k+1)-mers with a sliding window (Figure 4), and the canonical
//!   (k+1)-mers are counted by radix-sorting each batch's packed (k+1)-mers
//!   and run-length encoding the sorted runs (no hash table in the hot loop).
//!   Counts are thereby pre-aggregated per input batch (the paper
//!   pre-aggregates per worker) before the shuffle, and (k+1)-mers whose
//!   total count does not exceed the user threshold θ are discarded as likely
//!   sequencing errors.
//! * **Phase (ii)**: every surviving (k+1)-mer contributes one out-edge slot to
//!   its prefix k-mer vertex and one in-edge slot to its suffix k-mer vertex
//!   (with the appropriate polarity, Figure 6/8); the partial adjacencies are
//!   shuffled by k-mer vertex ID and merged into complete [`KmerVertex`]s.

use crate::adj::{edge_contributions, PackedAdj};
use crate::node::KmerVertex;
use ppa_pregel::mapreduce::{map_reduce_spillable_on, Emitter, MapReduceMetrics};
use ppa_pregel::ExecCtx;
use ppa_seq::kmer::CanonicalScanner;
use ppa_seq::{Base, FastxRecord, Kmer, ReadSet};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    /// Per-thread (k+1)-mer buffer + radix scratch for phase (i)'s
    /// sort-then-count. The map tasks run on the persistent pool threads of
    /// the [`ExecCtx`], so the capacity warmed up on the first batch is
    /// reused by every later batch — and every later construction job —
    /// executed on that thread.
    static KMER_COUNT_BUFS: RefCell<(Vec<u64>, Vec<u64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Configuration of DBG construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructConfig {
    /// k-mer size (the paper uses k = 31); (k+1)-mers are extracted from reads.
    pub k: usize,
    /// Coverage threshold θ: a (k+1)-mer is kept only if its count is strictly
    /// greater than θ. `0` keeps everything (useful for error-free input).
    pub min_coverage: u32,
    /// How many reads each map task processes at once (larger batches give
    /// better pre-aggregation, mirroring the per-worker counting of the paper).
    pub batch_size: usize,
}

impl Default for ConstructConfig {
    fn default() -> Self {
        ConstructConfig {
            k: 31,
            min_coverage: 1,
            batch_size: 1024,
        }
    }
}

/// Statistics of one DBG construction run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstructStats {
    /// Distinct canonical (k+1)-mers observed before filtering.
    pub distinct_kplus1_mers: u64,
    /// (k+1)-mers surviving the coverage filter θ.
    pub kept_kplus1_mers: u64,
    /// Number of k-mer vertices in the resulting DBG.
    pub vertices: u64,
    /// Total number of directed adjacency slots across all vertices (edge
    /// records; each physical edge contributes two).
    pub adjacency_slots: u64,
    /// Metrics of the counting phase.
    pub phase1: MapReduceMetrics,
    /// Metrics of the vertex-building phase.
    pub phase2: MapReduceMetrics,
    /// Wall-clock time of the whole operation.
    pub elapsed: Duration,
}

/// Output of DBG construction: the k-mer vertices in their compact form.
#[derive(Debug, Clone)]
pub struct ConstructOutcome {
    /// The k-mer vertices with packed adjacency.
    pub vertices: Vec<KmerVertex>,
    /// The k used.
    pub k: usize,
    /// Run statistics.
    pub stats: ConstructStats,
}

impl ConstructOutcome {
    /// Expands every vertex into the unified [`crate::AsmNode`] representation
    /// (the in-memory `convert(.)` hand-off to the contig-labeling job),
    /// consuming the outcome. Use [`to_nodes`](ConstructOutcome::to_nodes)
    /// when the compact vertices are still needed afterwards.
    pub fn into_nodes(self) -> Vec<crate::AsmNode> {
        self.to_nodes()
    }

    /// Like [`into_nodes`](ConstructOutcome::into_nodes), but borrows the
    /// outcome so `vertices`/`stats` remain available.
    pub fn to_nodes(&self) -> Vec<crate::AsmNode> {
        self.vertices.iter().map(|v| v.to_asm_node()).collect()
    }
}

/// Runs DBG construction over a read set on a private pool of `workers`
/// threads (inside a workflow, prefer [`build_dbg_on`] with the shared
/// context).
pub fn build_dbg(reads: &ReadSet, config: &ConstructConfig, workers: usize) -> ConstructOutcome {
    build_dbg_on(&ExecCtx::new(workers), reads, config)
}

/// Runs DBG construction on a caller-provided execution context: both
/// mini-MapReduce phases dispatch onto its persistent worker pool, and the
/// worker count is the pool size.
pub fn build_dbg_on(ctx: &ExecCtx, reads: &ReadSet, config: &ConstructConfig) -> ConstructOutcome {
    assert!(
        config.k >= 1 && config.k <= 31,
        "k must be in 1..=31 so that k-mer vertex IDs leave the top two bits free"
    );
    let start = Instant::now();
    let k = config.k;
    let theta = config.min_coverage;

    // ---- phase (i): count canonical (k+1)-mers ------------------------------
    // Both phases run through the spillable mini MapReduce: with a
    // `SpillPolicy` cap on the context the map side writes sorted runs to
    // disk once its buffers exceed the per-worker budget, and without one
    // the pass is byte-identical to the resident mini MapReduce.
    let batches: Vec<&[FastxRecord]> = reads.records.chunks(config.batch_size.max(1)).collect();
    let (counted, phase1) = map_reduce_spillable_on(
        ctx,
        batches,
        |batch: &[FastxRecord], out: &mut Emitter<'_, u64, u32>| {
            // Pre-aggregate within the batch to cut shuffle volume, by
            // sorting the batch's packed canonical (k+1)-mers (LSD radix —
            // `ppa_pregel::radix`) and run-length counting the sorted runs.
            // This removes the hash table from the hottest loop of the whole
            // pipeline: the inner window loop now only appends a `u64` to a
            // warm buffer, and the counting work becomes 2–4 cache-friendly
            // counting passes per batch. The rolling scanner canonicalises
            // each window incrementally and reads the segment bytes in
            // place, so no per-segment `Vec<Base>` or per-window
            // bit-reversal is needed.
            KMER_COUNT_BUFS.with(|bufs| {
                let (kmers, scratch) = &mut *bufs.borrow_mut();
                kmers.clear();
                let mut scanner = CanonicalScanner::new(k + 1).expect("k validated above");
                for read in batch {
                    for segment in read.acgt_segments() {
                        if segment.len() < k + 1 {
                            continue;
                        }
                        scanner.reset();
                        for &c in segment {
                            let base = Base::from_ascii_checked(c).expect("segment is ACGT-only");
                            if let Some(canonical) = scanner.push(base) {
                                kmers.push(canonical.kmer.packed());
                            }
                        }
                    }
                }
                ppa_pregel::radix::sort_keys(kmers, scratch);
                let n = kmers.len();
                let mut i = 0usize;
                while i < n {
                    let key = kmers[i];
                    let mut j = i + 1;
                    while j < n && kmers[j] == key {
                        j += 1;
                    }
                    out.emit(key, (j - i).min(u32::MAX as usize) as u32);
                    i = j;
                }
            });
        },
        |_worker, key: &u64, counts: &mut [u32], out: &mut Vec<(u64, u32)>| {
            let total: u64 = counts.iter().map(|&c| c as u64).sum();
            let total = total.min(u32::MAX as u64) as u32;
            if total > theta {
                out.push((*key, total));
            }
        },
    );
    let counted: Vec<(u64, u32)> = counted.into_iter().flatten().collect();
    // `groups` counts every distinct (k+1)-mer that reached reduce.
    let distinct_kplus1 = phase1.groups;
    let kept_kplus1 = counted.len() as u64;

    // ---- phase (ii): build k-mer vertices with packed adjacency -------------
    let (vertices, phase2) = map_reduce_spillable_on(
        ctx,
        counted,
        |(packed, count): (u64, u32), out: &mut Emitter<'_, u64, (u8, u32)>| {
            let kplus1 = Kmer::from_packed(packed, k + 1).expect("valid (k+1)-mer key");
            let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&kplus1);
            out.emit(src.packed(), (s_slot.bit() as u8, count));
            out.emit(tgt.packed(), (t_slot.bit() as u8, count));
        },
        |_worker, key: &u64, slots: &mut [(u8, u32)], out: &mut Vec<KmerVertex>| {
            let kmer = Kmer::from_packed(*key, k).expect("valid k-mer key");
            let mut adj = PackedAdj::new();
            for &(bit, coverage) in slots.iter() {
                adj.add(crate::adj::EdgeSlot::from_bit(bit as u32), coverage);
            }
            out.push(KmerVertex { kmer, adj });
        },
    );
    let vertices: Vec<KmerVertex> = vertices.into_iter().flatten().collect();

    let adjacency_slots: u64 = vertices.iter().map(|v| v.adj.degree() as u64).sum();
    let stats = ConstructStats {
        distinct_kplus1_mers: distinct_kplus1,
        kept_kplus1_mers: kept_kplus1,
        vertices: vertices.len() as u64,
        adjacency_slots,
        phase1,
        phase2,
        elapsed: start.elapsed(),
    };
    ConstructOutcome { vertices, k, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::VertexType;
    use ppa_seq::FastxRecord;
    use std::collections::HashMap;

    fn reads_from(seqs: &[&str]) -> ReadSet {
        ReadSet::from_records(
            seqs.iter()
                .enumerate()
                .map(|(i, s)| FastxRecord::new_fasta(format!("r{i}"), s.as_bytes().to_vec()))
                .collect(),
        )
    }

    fn config(k: usize, theta: u32) -> ConstructConfig {
        ConstructConfig {
            k,
            min_coverage: theta,
            batch_size: 2,
        }
    }

    fn dbg(reads: &ReadSet, config: &ConstructConfig) -> ConstructOutcome {
        build_dbg(reads, config, 3)
    }

    #[test]
    fn figure9_example_builds_a_simple_path() {
        // The strand "CTGCCGTACA" of Figure 9, covered by two overlapping
        // reads, yields (for k = 4) the seven canonical vertices CTGC, GGCA,
        // CGGC, ACGG, CGTA, GTAC, TACA forming a simple path.
        let reads = reads_from(&["CTGCCGT", "CCGTACA"]);
        let out = dbg(&reads, &config(4, 0));
        assert_eq!(out.k, 4);
        let nodes = out.to_nodes();
        assert_eq!(nodes.len(), 7);
        let mut names: Vec<String> = out.vertices.iter().map(|v| v.kmer.to_string()).collect();
        names.sort();
        assert_eq!(
            names,
            vec!["ACGG", "CGGC", "CGTA", "CTGC", "GGCA", "GTAC", "TACA"]
        );
        let by_type: HashMap<VertexType, usize> = nodes.iter().fold(HashMap::new(), |mut m, n| {
            *m.entry(n.vertex_type()).or_insert(0) += 1;
            m
        });
        // A simple path has exactly two ⟨1⟩ ends, five ⟨1-1⟩ interior vertices
        // and no branching vertices.
        assert_eq!(by_type.get(&VertexType::Branch).copied().unwrap_or(0), 0);
        assert_eq!(by_type.get(&VertexType::One).copied().unwrap_or(0), 2);
        assert_eq!(by_type.get(&VertexType::OneOne).copied().unwrap_or(0), 5);
        assert_eq!(out.stats.vertices as usize, nodes.len());
        assert!(out.stats.kept_kplus1_mers <= out.stats.distinct_kplus1_mers);
    }

    #[test]
    fn reverse_complement_reads_map_to_the_same_vertices() {
        // The same DNA segment read from either strand must produce the same
        // canonical k-mer vertices and edges (Section III, Figure 6).
        let forward = reads_from(&["CTGCCGTACA"]);
        let reverse = reads_from(&["TGTACGGCAG"]);
        let a = dbg(&forward, &config(3, 0));
        let b = dbg(&reverse, &config(3, 0));
        let ids_a: Vec<u64> = {
            let mut v: Vec<u64> = a.vertices.iter().map(|x| x.id()).collect();
            v.sort_unstable();
            v
        };
        let ids_b: Vec<u64> = {
            let mut v: Vec<u64> = b.vertices.iter().map(|x| x.id()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids_a, ids_b);
        // Edge coverage must merge across strands too.
        let both = dbg(&reads_from(&["CTGCCGTACA", "TGTACGGCAG"]), &config(3, 0));
        for v in &both.vertices {
            for (_, cov) in v.adj.iter() {
                assert_eq!(cov, 2, "each edge is supported by both strands");
            }
        }
    }

    #[test]
    fn coverage_threshold_filters_rare_kplus1_mers() {
        // "ACGTACGGA" appears three times, an erroneous variant once.
        let reads = reads_from(&["ACGTACGGA", "ACGTACGGA", "ACGTACGGA", "ACGTTCGGA"]);
        let strict = dbg(&reads, &config(3, 1));
        let lenient = dbg(&reads, &config(3, 0));
        assert!(strict.stats.kept_kplus1_mers < lenient.stats.kept_kplus1_mers);
        assert!(strict.stats.vertices < lenient.stats.vertices);
        // The filtered graph contains no low-coverage adjacency slot.
        for v in &strict.vertices {
            for (_, cov) in v.adj.iter() {
                assert!(cov >= 2);
            }
        }
    }

    #[test]
    fn n_characters_split_reads() {
        // The N breaks the read into "ACGTA" and "CGGAT": no (k+1)-mer may span it.
        let with_n = reads_from(&["ACGTANCGGAT"]);
        let out = dbg(&with_n, &config(3, 0));
        let without_break = dbg(&reads_from(&["ACGTACGGAT"]), &config(3, 0));
        assert!(out.stats.distinct_kplus1_mers < without_break.stats.distinct_kplus1_mers);
        // Reads shorter than k+1 (after splitting) are ignored entirely.
        let tiny = dbg(&reads_from(&["ACN", "GT"]), &config(3, 0));
        assert_eq!(tiny.stats.vertices, 0);
        assert!(tiny.vertices.is_empty());
    }

    #[test]
    fn branching_reads_create_ambiguous_vertices() {
        // Two reads share the prefix "ACGTACG" then diverge, creating a fork.
        let reads = reads_from(&["ACGTACGA", "ACGTACGC"]);
        let out = dbg(&reads, &config(3, 0));
        let nodes = out.into_nodes();
        let branch_count = nodes
            .iter()
            .filter(|n| n.vertex_type() == VertexType::Branch)
            .count();
        assert!(
            branch_count >= 1,
            "the fork point must be an ambiguous vertex"
        );
    }

    #[test]
    fn empty_and_too_short_input() {
        let out = dbg(&ReadSet::new(), &ConstructConfig::default());
        assert!(out.vertices.is_empty());
        let out = dbg(&reads_from(&["ACGT"]), &ConstructConfig::default());
        assert!(
            out.vertices.is_empty(),
            "reads shorter than k+1 contribute nothing"
        );
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_rejected() {
        build_dbg(
            &ReadSet::new(),
            &ConstructConfig {
                k: 32,
                ..Default::default()
            },
            2,
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        // For every edge slot of every vertex, the neighbour vertex exists and
        // has a slot pointing back.
        let reads = reads_from(&["ATTGCAAGTC", "TGCAAGTCCA", "GACTTGCAAT"]);
        let out = dbg(&reads, &config(4, 0));
        let by_id: HashMap<u64, &KmerVertex> = out.vertices.iter().map(|v| (v.id(), v)).collect();
        for v in &out.vertices {
            for (slot, _) in v.adj.iter() {
                let neighbor = slot.neighbor_of(&v.kmer);
                let n = by_id
                    .get(&neighbor.packed())
                    .unwrap_or_else(|| panic!("neighbour {} missing", neighbor));
                let points_back = n.adj.iter().any(|(s, _)| s.neighbor_of(&n.kmer) == v.kmer);
                assert!(
                    points_back,
                    "edge {} -> {} has no reverse slot",
                    v.kmer, neighbor
                );
            }
        }
    }
}
