//! Operation ③ — contig merging (Section IV-B).
//!
//! Takes the labelled unambiguous vertices and, for every label group, orders
//! the member vertices along their path and stitches their sequences into a
//! contig, taking edge polarity into account: a member observed in reverse
//! orientation contributes its reverse complement, and consecutive members
//! overlap by k−1 bases. The resulting contig vertex records its coverage (the
//! minimum edge coverage merged into it), and its two end neighbours with the
//! contig-side polarity normalised to `L` (Figure 9).
//!
//! The grouping is a mini-MapReduce keyed by contig label; the reduce step is
//! executed per worker, and contig IDs are minted as `worker ‖ ordinal`
//! (Figure 7c). Following the paper, a group that dangles (at least one end has
//! no ambiguous neighbour) and whose total length does not exceed the
//! tip-length threshold is discarded immediately instead of being emitted.

use crate::ids::contig_id;
use crate::node::{AsmNode, Edge, NodeSeq};
use crate::polarity::{Direction, Polarity, Side};
use ppa_pregel::mapreduce::{map_reduce_partitioned_on, Emitter, MapReduceMetrics};
use ppa_pregel::ExecCtx;
use ppa_seq::{DnaString, Orientation};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration of contig merging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeConfig {
    /// k-mer size used to build the DBG (consecutive members overlap by k−1).
    pub k: usize,
    /// Tip-length threshold: dangling groups no longer than this are dropped.
    pub tip_length_threshold: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            k: 31,
            tip_length_threshold: 80,
        }
    }
}

/// Output of contig merging.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The newly created contig vertices.
    pub contigs: Vec<AsmNode>,
    /// Number of label groups discarded as short dangling tips.
    pub dropped_tips: usize,
    /// Number of label groups processed.
    pub groups: usize,
    /// Mini-MapReduce metrics of the grouping pass.
    pub mapreduce: MapReduceMetrics,
}

/// A stitched contig before an ID has been assigned.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ContigDraft {
    pub seq: DnaString,
    pub coverage: u32,
    /// `(neighbour id, neighbour-side label, edge coverage)` of the ambiguous
    /// vertex preceding the contig, if any.
    pub in_neighbor: Option<(u64, Orientation, u32)>,
    /// Same for the ambiguous vertex following the contig.
    pub out_neighbor: Option<(u64, Orientation, u32)>,
    /// Number of member vertices merged.
    pub members: usize,
    /// Whether the group was a cycle (no contig ends).
    pub is_cycle: bool,
}

impl ContigDraft {
    /// Converts the draft into a contig [`AsmNode`] with the given ID.
    pub(crate) fn into_node(self, id: u64) -> AsmNode {
        let mut node = AsmNode::new_contig(id, self.seq, self.coverage);
        if let Some((nbr, label, cov)) = self.in_neighbor {
            node.push_edge(Edge {
                neighbor: nbr,
                direction: Direction::In,
                polarity: Polarity::from_labels(label, Orientation::Forward),
                coverage: cov,
            });
        } else {
            node.push_edge(Edge {
                neighbor: crate::ids::NULL_ID,
                direction: Direction::In,
                polarity: Polarity::LL,
                coverage: 0,
            });
        }
        if let Some((nbr, label, cov)) = self.out_neighbor {
            node.push_edge(Edge {
                neighbor: nbr,
                direction: Direction::Out,
                polarity: Polarity::from_labels(Orientation::Forward, label),
                coverage: cov,
            });
        } else {
            node.push_edge(Edge {
                neighbor: crate::ids::NULL_ID,
                direction: Direction::Out,
                polarity: Polarity::LL,
                coverage: 0,
            });
        }
        node
    }
}

/// Orientation of the next member reached through `edge` during the walk.
fn next_orientation(edge: &Edge) -> Orientation {
    match edge.direction {
        Direction::Out => edge.polarity.target_label(),
        Direction::In => edge.polarity.source_label().flip(),
    }
}

/// Label of an outside neighbour, normalised to the reading in which the
/// member appears with `member_orientation` (i.e. the contig reads forward).
fn outside_neighbor_label(edge: &Edge, member_orientation: Orientation) -> Orientation {
    if edge.own_label() == member_orientation {
        edge.neighbor_label()
    } else {
        edge.neighbor_label().flip()
    }
}

/// Stitches one label group into a contig draft.
///
/// Returns `None` if the group is a short dangling tip (paper: "exit reduce if
/// the aggregated contig length is not above the tip-length threshold").
pub(crate) fn stitch_group(
    members: &[&AsmNode],
    k: usize,
    tip_length_threshold: usize,
) -> Option<ContigDraft> {
    assert!(!members.is_empty());
    let by_id: HashMap<u64, &AsmNode> = members.iter().map(|n| (n.id, *n)).collect();

    // Locate a contig end: a member with a side that has no edge leading back
    // into the group.
    let outer_side_of = |node: &AsmNode, side: Side| -> bool {
        match node.sole_edge_on(side) {
            None => true,
            Some(e) => !by_id.contains_key(&e.neighbor),
        }
    };
    let mut start: Option<(&AsmNode, Side)> = None;
    for node in members {
        if outer_side_of(node, Side::Left) {
            start = Some((node, Side::Left));
            break;
        }
        if outer_side_of(node, Side::Right) {
            start = Some((node, Side::Right));
            break;
        }
    }
    let is_cycle = start.is_none();
    let (start_node, entry_side) = start.unwrap_or_else(|| {
        // Cycle: start from the smallest member ID for determinism.
        let node = members.iter().min_by_key(|n| n.id).expect("non-empty");
        (node, Side::Left)
    });

    let start_orientation = if entry_side == Side::Left {
        Orientation::Forward
    } else {
        Orientation::ReverseComplement
    };

    // In-neighbour: the outside edge on the entry side, if any.
    let in_neighbor = start_node.sole_edge_on(entry_side).and_then(|e| {
        if by_id.contains_key(&e.neighbor) {
            None
        } else {
            Some((
                e.neighbor,
                outside_neighbor_label(e, start_orientation),
                e.coverage,
            ))
        }
    });

    // Walk the path, stitching sequences.
    let mut sequence = start_node.seq.oriented(start_orientation);
    let mut coverage: u32 = match &start_node.seq {
        NodeSeq::Contig(_) => start_node.coverage,
        NodeSeq::Kmer(_) => u32::MAX,
    };
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(start_node.id);
    let mut current: &AsmNode = start_node;
    let mut current_orientation = start_orientation;
    let mut out_neighbor: Option<(u64, Orientation, u32)> = None;
    let mut closed_cycle = false;

    loop {
        let exit_side = match current_orientation {
            Orientation::Forward => Side::Right,
            Orientation::ReverseComplement => Side::Left,
        };
        let Some(edge) = current.sole_edge_on(exit_side) else {
            break; // dangling end
        };
        if !by_id.contains_key(&edge.neighbor) {
            out_neighbor = Some((
                edge.neighbor,
                outside_neighbor_label(edge, current_orientation),
                edge.coverage,
            ));
            break;
        }
        if visited.contains(&edge.neighbor) {
            closed_cycle = true;
            break;
        }
        let next = by_id[&edge.neighbor];
        let next_or = next_orientation(edge);
        coverage = coverage.min(edge.coverage);
        if let NodeSeq::Contig(_) = &next.seq {
            coverage = coverage.min(next.coverage);
        }
        let oriented = next.seq.oriented(next_or);
        debug_assert!(oriented.len() >= k.saturating_sub(1));
        // Consecutive members overlap by k-1 bases.
        let overlap = (k - 1).min(oriented.len());
        for i in overlap..oriented.len() {
            sequence.push(oriented.get(i));
        }
        visited.insert(next.id);
        current = next;
        current_orientation = next_or;
    }

    debug_assert_eq!(
        visited.len(),
        members.len(),
        "label group does not form a single path/cycle"
    );

    if coverage == u32::MAX {
        // Single k-mer member with no internal edge: fall back to its own coverage.
        coverage = start_node.coverage;
    }

    let dangling = !closed_cycle && (in_neighbor.is_none() || out_neighbor.is_none());
    if dangling && sequence.len() <= tip_length_threshold {
        return None;
    }

    Some(ContigDraft {
        seq: sequence,
        coverage,
        in_neighbor,
        out_neighbor,
        members: visited.len(),
        is_cycle: closed_cycle || is_cycle,
    })
}

/// Runs contig merging: groups the labelled vertices by label with a
/// mini-MapReduce pass and stitches every group into a contig vertex.
/// (Private pool of `workers` threads; inside a workflow, prefer
/// [`merge_contigs_on`].)
pub fn merge_contigs(
    nodes: &[AsmNode],
    labels: &[(u64, u64)],
    config: &MergeConfig,
    workers: usize,
) -> MergeOutcome {
    merge_contigs_on(&ExecCtx::new(workers), nodes, labels, config)
}

/// Runs contig merging on a caller-provided execution context (the worker
/// count is the context's pool size).
pub fn merge_contigs_on(
    ctx: &ExecCtx,
    nodes: &[AsmNode],
    labels: &[(u64, u64)],
    config: &MergeConfig,
) -> MergeOutcome {
    let by_id: HashMap<u64, &AsmNode> = nodes.iter().map(|n| (n.id, n)).collect();
    let inputs: Vec<(u64, u64)> = labels.to_vec();
    let k = config.k;
    let tip = config.tip_length_threshold;

    let (per_worker, mapreduce) = map_reduce_partitioned_on(
        ctx,
        inputs,
        |(node_id, label): (u64, u64), out: &mut Emitter<'_, u64, &AsmNode>| {
            if let Some(node) = by_id.get(&node_id) {
                out.emit(label, *node);
            }
        },
        |_worker: usize,
         _label: &u64,
         members: &mut [&AsmNode],
         out: &mut Vec<Option<ContigDraft>>| {
            out.push(stitch_group(members, k, tip));
        },
    );

    let mut contigs = Vec::new();
    let mut dropped_tips = 0usize;
    let mut groups = 0usize;
    for (worker, drafts) in per_worker.into_iter().enumerate() {
        let mut ordinal = 0u32;
        for draft in drafts {
            groups += 1;
            match draft {
                Some(d) => {
                    ordinal += 1;
                    contigs.push(d.into_node(contig_id(worker as u32, ordinal)));
                }
                None => dropped_tips += 1,
            }
        }
    }

    MergeOutcome {
        contigs,
        dropped_tips,
        groups,
        mapreduce,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::is_contig_id;
    use crate::node::VertexType;
    use crate::ops::label::label_contigs_lr;
    use crate::ops::label::tests::nodes_from_reads;

    fn merge_cfg(k: usize, tip: usize) -> MergeConfig {
        MergeConfig {
            k,
            tip_length_threshold: tip,
        }
    }

    fn assemble_single_contig(reads: &[&str], k: usize) -> AsmNode {
        let nodes = nodes_from_reads(reads, k);
        let labels = label_contigs_lr(&nodes, 2);
        let out = merge_contigs(&nodes, &labels.labels, &merge_cfg(k, 0), 3);
        assert_eq!(out.contigs.len(), 1, "expected exactly one contig");
        out.contigs.into_iter().next().unwrap()
    }

    #[test]
    fn figure9_contig_is_reconstructed() {
        // The strand "CTGCCGTACA" (Figure 9) covered by two overlapping reads
        // forms a single unambiguous path whose stitched sequence must spell
        // the original strand (or its reverse complement).
        let contig = assemble_single_contig(&["CTGCCGT", "CCGTACA"], 4);
        let seq = match &contig.seq {
            NodeSeq::Contig(s) => s.to_ascii(),
            _ => panic!("expected a contig node"),
        };
        let expected = "CTGCCGTACA";
        let rc = DnaString::from_ascii(expected)
            .unwrap()
            .reverse_complement()
            .to_ascii();
        assert!(
            seq == expected || seq == rc,
            "stitched sequence {seq} is neither {expected} nor its reverse complement"
        );
        assert!(is_contig_id(contig.id));
        // Both ends dangle (no ambiguous neighbours), so both edges are NULL.
        assert_eq!(contig.vertex_type(), VertexType::Isolated);
    }

    #[test]
    fn reverse_complement_reads_give_same_contig() {
        let a = assemble_single_contig(&["CTGCCGT", "CCGTACA"], 4);
        let b = assemble_single_contig(&["TGTACGGCAG"], 4); // rc of the strand
        let seq_a = a.seq.to_dna().canonical().to_ascii();
        let seq_b = b.seq.to_dna().canonical().to_ascii();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn longer_sequence_roundtrip() {
        // A 60 bp sequence whose canonical 8/9/10-mers are all distinct (no
        // ambiguity): cover it with overlapping 20-mers and check that merging
        // reproduces it exactly.
        let genome = "ACTGTATAGTCCCACCTGGTGATCCTATGCTTGTGAGTACCCAGAAAATAGCGACGGACC";
        let mut reads = Vec::new();
        for start in (0..genome.len() - 20).step_by(4) {
            reads.push(&genome[start..start + 20]);
        }
        reads.push(&genome[genome.len() - 20..]);
        let contig = assemble_single_contig(&reads, 9);
        let seq = contig.seq.to_dna();
        let fwd = seq.to_ascii();
        let rc = seq.reverse_complement().to_ascii();
        assert!(fwd == genome || rc == genome, "got {fwd}");
        assert!(contig.coverage >= 1);
    }

    #[test]
    fn coverage_is_minimum_edge_coverage() {
        // Middle of the path covered twice, ends once → contig coverage 1.
        let contig = assemble_single_contig(&["CTGCCGTA", "GCCGTACA"], 4);
        assert_eq!(contig.coverage, 1);
        let deep = assemble_single_contig(&["CTGCCGTACA", "CTGCCGTACA", "CTGCCGTACA"], 4);
        assert_eq!(deep.coverage, 3);
    }

    #[test]
    fn fork_produces_contigs_with_ambiguous_neighbors() {
        // Fork: shared prefix then two branches. The branch contigs must point
        // at the ambiguous fork vertex.
        let nodes = nodes_from_reads(&["TTACTTGATCCGTT", "TTACTTGAACGGTT"], 5);
        let labels = label_contigs_lr(&nodes, 2);
        let out = merge_contigs(&nodes, &labels.labels, &merge_cfg(5, 0), 3);
        assert!(out.contigs.len() >= 2);
        let ambiguous: HashSet<u64> = labels.ambiguous.iter().copied().collect();
        // At least one contig must have a real (ambiguous) neighbour, and all
        // real neighbours of contigs must be ambiguous vertices.
        let mut real_neighbor_seen = false;
        for contig in &out.contigs {
            for e in contig.real_edges() {
                real_neighbor_seen = true;
                assert!(
                    ambiguous.contains(&e.neighbor),
                    "contig neighbour {} should be an ambiguous vertex",
                    e.neighbor
                );
                // Contig-side polarity is always L (Figure 9).
                assert_eq!(e.own_label(), Orientation::Forward);
            }
        }
        assert!(real_neighbor_seen);
    }

    #[test]
    fn short_dangling_groups_are_dropped_as_tips() {
        let nodes = nodes_from_reads(&["CTGCCGT", "CCGTACA"], 4);
        let labels = label_contigs_lr(&nodes, 2);
        // The single 10 bp contig dangles on both sides; with a threshold of 80
        // it is discarded.
        let out = merge_contigs(&nodes, &labels.labels, &merge_cfg(4, 80), 3);
        assert_eq!(out.contigs.len(), 0);
        assert_eq!(out.dropped_tips, 1);
        assert_eq!(out.groups, 1);
        // With threshold 0 it is kept.
        let kept = merge_contigs(&nodes, &labels.labels, &merge_cfg(4, 0), 3);
        assert_eq!(kept.contigs.len(), 1);
        assert_eq!(kept.dropped_tips, 0);
    }

    #[test]
    fn cycle_group_is_stitched_and_kept() {
        // Build a cyclic unambiguous group synthetically via the labeling
        // fallback, then merge it: the contig must contain every member and
        // have NULL ends.
        let nodes = crate::ops::label::tests::synthetic_cycle(12);
        let labels = label_contigs_lr(&nodes, 2);
        let out = merge_contigs(&nodes, &labels.labels, &merge_cfg(6, 0), 3);
        assert_eq!(out.contigs.len(), 1);
        let contig = &out.contigs[0];
        assert_eq!(contig.vertex_type(), VertexType::Isolated);
        // Cycle of m 6-mers stitched with k-1 overlap: length m + 5... the
        // first member contributes 6 bases, each subsequent member 1.
        assert_eq!(contig.len(), nodes.len() + 5);
    }

    #[test]
    fn empty_labels_produce_no_contigs() {
        let nodes = nodes_from_reads(&["CTGCCGT"], 4);
        let out = merge_contigs(&nodes, &[], &merge_cfg(4, 0), 3);
        assert!(out.contigs.is_empty());
        assert_eq!(out.groups, 0);
    }

    #[test]
    fn contig_ids_are_unique_and_contig_typed() {
        let nodes = nodes_from_reads(&["TTACTTGATCCGTT", "TTACTTGAACGGTT", "GGCATTACTTGA"], 5);
        let labels = label_contigs_lr(&nodes, 2);
        let out = merge_contigs(&nodes, &labels.labels, &merge_cfg(5, 0), 3);
        let ids: HashSet<u64> = out.contigs.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), out.contigs.len(), "contig IDs must be unique");
        assert!(ids.iter().all(|id| is_contig_id(*id)));
    }
}
