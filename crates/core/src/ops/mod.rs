//! The five assembly operations of Figure 10.
//!
//! Each operation is a standalone function that consumes and produces plain
//! collections of graph nodes, so that users can compose them into custom
//! workflows exactly as the paper advertises ("users may combine the provided
//! operations to implement various sequencing strategies"). Each is also
//! wrapped as a first-class [`crate::pipeline::Stage`] for composition
//! through the [`crate::pipeline::Pipeline`] builder; the standard pipeline
//! is assembled in [`crate::workflow`].

pub mod bubble;
pub mod construct;
pub mod label;
pub mod label_sv;
pub mod merge;
pub mod tip;

pub use bubble::{filter_bubbles, filter_bubbles_on, BubbleConfig, BubbleOutcome};
pub use construct::{build_dbg, build_dbg_on, ConstructConfig, ConstructOutcome};
pub use label::{label_contigs_lr, label_contigs_lr_on, LabelOutcome};
pub use label_sv::{label_contigs_sv, label_contigs_sv_on};
pub use merge::{merge_contigs, merge_contigs_on, MergeConfig, MergeOutcome};
pub use tip::{remove_tips, remove_tips_on, TipConfig, TipOutcome};
