//! Stage-boundary checkpointing of a [`GraphState`].
//!
//! Pregel's signature production property is recovery: a failed run restarts
//! from a consistent snapshot instead of losing the whole job. This module
//! provides that snapshot for the assembly pipeline — the
//! [`Pipeline`](crate::pipeline::Pipeline) saves the [`GraphState`] after
//! each completed stage (under a
//! [`CheckpointPolicy`](crate::pipeline::CheckpointPolicy)), and
//! [`Pipeline::resume`](crate::pipeline::Pipeline::resume) reloads the latest
//! snapshot and replays only the remaining stages.
//!
//! # On-disk format
//!
//! A checkpoint directory holds one subdirectory per retained snapshot,
//! named `stage-NNNN` after the number of *flattened* pipeline stages
//! completed (repeat blocks unrolled — the paper workflow ①②③(④⑤②③)×2 has 12
//! flattened stages). Inside a snapshot:
//!
//! | file            | contents                                             |
//! |-----------------|------------------------------------------------------|
//! | `nodes.col`     | [`GraphState::nodes`] as flat columns                |
//! | `labels.col`    | [`GraphState::labels`]: labels, ambiguous IDs, Pregel metrics |
//! | `contigs.col`   | [`GraphState::contigs`] as flat columns              |
//! | `ambiguous.col` | [`GraphState::ambiguous_kmers`] as flat columns      |
//! | `output.col`    | [`GraphState::output`] contigs as flat columns       |
//! | `MANIFEST`      | magic + version, pipeline position, repeat-loop round counters, config/reads fingerprints, worker count, per-file `(length, striped checksum)` |
//!
//! Node sections are **column dumps**, matching the columnar vertex store: an
//! ID column, a coverage column, a sequence-tag column, the packed k-mer and
//! 2-bit contig-word columns, an edge-count column, and flattened edge
//! columns (neighbor / packed direction+polarity / coverage). All integers
//! are little-endian via the `serde::bin` shim.
//!
//! # Crash safety and validation
//!
//! The `MANIFEST` is written **last**: a crash mid-save leaves a snapshot
//! without a manifest, which [`latest`] ignores, so a resumed run never sees
//! a half-written checkpoint. On load, every section file is validated
//! against the manifest's recorded length and striped [`checksum64`], and the
//! decoders themselves never panic on malformed bytes — truncation and
//! corruption surface as typed [`CheckpointError`]s. A manifest also records
//! a fingerprint of the pipeline configuration and of the input reads, so
//! resuming with a different config or a different read set is rejected with
//! [`CheckpointError::Mismatch`] instead of silently producing garbage.
//!
//! After a successful save the pipeline keeps only the newest snapshot:
//! [`save`] prunes every other `stage-*` subdirectory.

use crate::node::{AsmNode, Edge, NodeSeq};
use crate::ops::label::LabelOutcome;
use crate::pipeline::GraphState;
use crate::polarity::{Direction, Polarity};
use crate::workflow::Contig;
use ppa_pregel::{Metrics, SuperstepMetrics};
use ppa_seq::{DnaString, Kmer, ReadSet};
use serde::bin::{BinError, Reader, Writer};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First 8 bytes of every `MANIFEST`.
const MAGIC: [u8; 8] = *b"PPACKPT1";
/// Format version stamped into and checked against every manifest.
/// v3 added the cancellation-check counters to the metrics codec; v4 added
/// the out-of-core spill counters.
const VERSION: u32 = 4;
/// The manifest file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The section files of a snapshot, in write order.
const SECTIONS: [&str; 5] = [
    "nodes.col",
    "labels.col",
    "contigs.col",
    "ambiguous.col",
    "output.col",
];

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed checkpoint failure. Loading never panics: malformed bytes on disk
/// become [`Truncated`](CheckpointError::Truncated) or
/// [`Corrupt`](CheckpointError::Corrupt), and a snapshot that does not match
/// the resuming run becomes [`Mismatch`](CheckpointError::Mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An I/O operation failed (also produced by injected checkpoint-write
    /// faults).
    Io(String),
    /// A file ended before the data it promised (or is shorter than the
    /// manifest recorded).
    Truncated {
        /// The offending file.
        file: String,
        /// What was being read.
        detail: String,
    },
    /// A file's contents are structurally invalid (bad magic, bad tag,
    /// checksum mismatch, …).
    Corrupt {
        /// The offending file.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// The snapshot is internally valid but belongs to a different run
    /// (different pipeline config, read set, or worker count).
    Mismatch {
        /// Which recorded property disagreed.
        what: String,
        /// Value recorded in the manifest.
        expected: String,
        /// Value of the resuming run.
        actual: String,
    },
    /// No complete snapshot exists under the checkpoint directory.
    NotFound(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Truncated { file, detail } => {
                write!(f, "truncated checkpoint file {file}: {detail}")
            }
            CheckpointError::Corrupt { file, detail } => {
                write!(f, "corrupt checkpoint file {file}: {detail}")
            }
            CheckpointError::Mismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "checkpoint {what} mismatch: snapshot has {expected}, this run has {actual}"
            ),
            CheckpointError::NotFound(dir) => {
                write!(f, "no complete checkpoint found under {dir}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Maps a binary-decoding error in `file` to a typed checkpoint error.
fn bin_err(file: &str, e: BinError) -> CheckpointError {
    match e {
        BinError::Truncated {
            offset,
            needed,
            remaining,
        } => CheckpointError::Truncated {
            file: file.to_string(),
            detail: format!("offset {offset}: needed {needed} bytes, {remaining} remain"),
        },
        BinError::Invalid { offset, what } => CheckpointError::Corrupt {
            file: file.to_string(),
            detail: format!("offset {offset}: {what}"),
        },
    }
}

// ---------------------------------------------------------------------------
// FNV-1a hashing (checksums and fingerprints)
// ---------------------------------------------------------------------------

/// A streaming 64-bit FNV-1a hasher, used for section checksums and for the
/// pipeline/reads fingerprints recorded in the manifest.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a length-prefixed string into the hash (unambiguous under
    /// concatenation).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The hash value so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Fast checksum for bulk data (section files, read sequences): four
/// independent FNV-style lanes, each consuming one little-endian `u64` word
/// per multiply, folded into a single value together with the input length.
///
/// Byte-wise FNV-1a is a serial one-multiply-per-*byte* dependency chain,
/// which makes checksumming the dominant cost of saving and validating
/// multi-megabyte snapshots. Striping across four lanes processes 32 bytes
/// per round with independent multiplies, roughly an order of magnitude
/// faster, while a single flipped bit still changes the folded value.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64,
        0x9ae1_6a3b_2f90_404fu64,
        0x6c62_272e_07bb_0142u64,
        0xaf63_bd4c_8601_b7dfu64,
    ];
    // Panic-free word load: `chunks_exact(8)` guarantees 8 bytes, but the
    // codec rules ban `expect`, so assemble the word with a bounded copy.
    fn lane_word(word: &[u8]) -> u64 {
        let mut w = [0u8; 8];
        for (dst, &src) in w.iter_mut().zip(word) {
            *dst = src;
        }
        u64::from_le_bytes(w)
    }
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            *lane = (*lane ^ lane_word(word)).wrapping_mul(PRIME);
        }
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 32];
        for (dst, &src) in padded.iter_mut().zip(tail) {
            *dst = src;
        }
        for (lane, word) in lanes.iter_mut().zip(padded.chunks_exact(8)) {
            *lane = (*lane ^ lane_word(word)).wrapping_mul(PRIME);
        }
    }
    // Word-granular FNV-style fold: one multiply per lane (cheap enough to
    // keep `checksum64` fast on small per-read buffers too).
    let mut fold = 0xcbf2_9ce4_8422_2325u64;
    for lane in lanes {
        fold = (fold ^ lane).wrapping_mul(PRIME);
    }
    (fold ^ bytes.len() as u64).wrapping_mul(PRIME)
}

/// Fingerprint of an input read set: record count plus every record's id,
/// sequence and quality bytes. A resumed run must present the same reads the
/// checkpoint was taken from. Sequence and quality buffers are digested with
/// the striped [`checksum64`] — this runs on every save *and* every load, so
/// it must not re-hash megabytes of reads byte by byte.
pub fn reads_fingerprint(reads: &ReadSet) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(reads.records.len() as u64);
    for r in &reads.records {
        h.write_str(&r.id);
        h.write_u64(checksum64(&r.seq));
        h.write_u64(checksum64(&r.qual));
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Length + checksum of one section file, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileEntry {
    name: String,
    len: u64,
    checksum: u64,
}

/// The decoded `MANIFEST` of a snapshot: where in the pipeline the snapshot
/// was taken and what it must match to be resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Number of flattened pipeline stages completed when the snapshot was
    /// taken (the resume point: replay starts at this flattened index).
    pub completed_stages: usize,
    /// Per-stage-name 1-based round counters at the snapshot (the repeat-loop
    /// position), so replayed stages continue the numbering — e.g. after
    /// round 1 of the correction loop, `("label", 2)` records that the next
    /// `Label` is round 3.
    pub rounds: Vec<(String, usize)>,
    /// Fingerprint of the pipeline structure and stage configurations.
    pub pipeline_fingerprint: u64,
    /// Fingerprint of the input read set ([`reads_fingerprint`]).
    pub reads_fingerprint: u64,
    /// Worker count of the run that wrote the snapshot.
    pub workers: usize,
    /// [`GraphState::rewired`] at the snapshot.
    pub rewired: bool,
    /// Section files with their recorded lengths and checksums.
    files: Vec<FileEntry>,
}

impl Manifest {
    fn encode(&self) -> Result<Vec<u8>, CheckpointError> {
        // Writes into a Vec cannot fail in practice, but the codec rules ban
        // `unwrap`, so the infallibility flows through `?` as an io error.
        let mut w = Writer::new(Vec::new());
        w.raw(&MAGIC)?;
        w.u32(VERSION)?;
        w.u64(self.completed_stages as u64)?;
        w.u64(self.rounds.len() as u64)?;
        for (name, round) in &self.rounds {
            w.str(name)?;
            w.u64(*round as u64)?;
        }
        w.u64(self.pipeline_fingerprint)?;
        w.u64(self.reads_fingerprint)?;
        w.u64(self.workers as u64)?;
        w.bool(self.rewired)?;
        w.u64(self.files.len() as u64)?;
        for f in &self.files {
            w.str(&f.name)?;
            w.u64(f.len)?;
            w.u64(f.checksum)?;
        }
        Ok(w.into_inner())
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, CheckpointError> {
        let file = MANIFEST_FILE;
        let mut r = Reader::new(bytes);
        let magic = r.take_magic().map_err(|e| bin_err(file, e))?;
        if magic != MAGIC {
            return Err(CheckpointError::Corrupt {
                file: file.into(),
                detail: format!("bad magic {magic:02x?}"),
            });
        }
        let version = r.u32().map_err(|e| bin_err(file, e))?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch {
                what: "format version".into(),
                expected: version.to_string(),
                actual: VERSION.to_string(),
            });
        }
        let completed_stages = r.u64().map_err(|e| bin_err(file, e))? as usize;
        let n_rounds = r.u64().map_err(|e| bin_err(file, e))? as usize;
        let mut rounds = Vec::new();
        for _ in 0..n_rounds {
            let name = r.str().map_err(|e| bin_err(file, e))?.to_string();
            let round = r.u64().map_err(|e| bin_err(file, e))? as usize;
            rounds.push((name, round));
        }
        let pipeline_fingerprint = r.u64().map_err(|e| bin_err(file, e))?;
        let reads_fp = r.u64().map_err(|e| bin_err(file, e))?;
        let workers = r.u64().map_err(|e| bin_err(file, e))? as usize;
        let rewired = r.bool().map_err(|e| bin_err(file, e))?;
        let n_files = r.u64().map_err(|e| bin_err(file, e))? as usize;
        let mut files = Vec::new();
        for _ in 0..n_files {
            let name = r.str().map_err(|e| bin_err(file, e))?.to_string();
            let len = r.u64().map_err(|e| bin_err(file, e))?;
            let checksum = r.u64().map_err(|e| bin_err(file, e))?;
            files.push(FileEntry {
                name,
                len,
                checksum,
            });
        }
        if !r.is_empty() {
            return Err(CheckpointError::Corrupt {
                file: file.into(),
                detail: format!("{} trailing bytes", r.remaining()),
            });
        }
        Ok(Manifest {
            completed_stages,
            rounds,
            pipeline_fingerprint,
            reads_fingerprint: reads_fp,
            workers,
            rewired,
            files,
        })
    }
}

/// Reads the fixed 8-byte magic.
trait TakeMagic<'a> {
    fn take_magic(&mut self) -> Result<[u8; 8], BinError>;
}

impl<'a> TakeMagic<'a> for Reader<'a> {
    fn take_magic(&mut self) -> Result<[u8; 8], BinError> {
        let mut out = [0u8; 8];
        for b in &mut out {
            *b = self.u8()?;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Section encoding: columnar node / label / contig dumps
// ---------------------------------------------------------------------------

/// Sequence tag column values.
const TAG_KMER: u8 = 0;
const TAG_CONTIG: u8 = 1;

fn pack_edge_meta(e: &Edge) -> u8 {
    let dir = match e.direction {
        Direction::Out => 0u8,
        Direction::In => 1u8,
    };
    (dir << 2) | e.polarity.index() as u8
}

fn unpack_edge_meta(
    file: &str,
    offset: usize,
    byte: u8,
) -> Result<(Direction, Polarity), CheckpointError> {
    if byte > 0b111 {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("offset {offset}: edge meta byte {byte:#04x} out of range"),
        });
    }
    let direction = if byte >> 2 == 0 {
        Direction::Out
    } else {
        Direction::In
    };
    Ok((direction, Polarity::from_index(byte as usize & 0b11)))
}

/// Encodes a node slice as flat columns: ids, coverages, sequence tags,
/// packed k-mers (+k), contig lengths + 2-bit words, edge counts, and
/// flattened edge columns.
fn encode_nodes(nodes: &[AsmNode]) -> Result<Vec<u8>, CheckpointError> {
    let mut w = Writer::new(Vec::new());
    w.u64(nodes.len() as u64)?;
    for n in nodes {
        w.u64(n.id)?;
    }
    for n in nodes {
        w.u32(n.coverage)?;
    }
    for n in nodes {
        let tag = match &n.seq {
            NodeSeq::Kmer(_) => TAG_KMER,
            NodeSeq::Contig(_) => TAG_CONTIG,
        };
        w.u8(tag)?;
    }
    // K-mer columns (packed bits, then k values), in node order.
    for n in nodes {
        if let NodeSeq::Kmer(k) = &n.seq {
            w.u64(k.packed())?;
        }
    }
    for n in nodes {
        if let NodeSeq::Kmer(k) = &n.seq {
            w.u8(k.k() as u8)?;
        }
    }
    // Contig columns: base lengths, then all 2-bit words concatenated.
    for n in nodes {
        if let NodeSeq::Contig(s) = &n.seq {
            w.u64(s.len() as u64)?;
        }
    }
    for n in nodes {
        if let NodeSeq::Contig(s) = &n.seq {
            for &word in s.words() {
                w.u64(word)?;
            }
        }
    }
    // Edge columns.
    for n in nodes {
        w.u32(n.edges.len() as u32)?;
    }
    for n in nodes {
        for e in &n.edges {
            w.u64(e.neighbor)?;
        }
    }
    for n in nodes {
        for e in &n.edges {
            w.u8(pack_edge_meta(e))?;
        }
    }
    for n in nodes {
        for e in &n.edges {
            w.u32(e.coverage)?;
        }
    }
    Ok(w.into_inner())
}

fn decode_nodes(file: &str, bytes: &[u8]) -> Result<Vec<AsmNode>, CheckpointError> {
    let mut r = Reader::new(bytes);
    let e = |r: BinError| bin_err(file, r);
    let n = r.u64().map_err(e)? as usize;
    if n > bytes.len() {
        // A node occupies far more than one byte; a count beyond the file
        // size is certainly a corrupt header, not a plausible allocation.
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("node count {n} exceeds file size {}", bytes.len()),
        });
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64().map_err(e)?);
    }
    let mut coverages = Vec::with_capacity(n);
    for _ in 0..n {
        coverages.push(r.u32().map_err(e)?);
    }
    let mut tags = Vec::with_capacity(n);
    for _ in 0..n {
        let at = r.position();
        let tag = r.u8().map_err(e)?;
        if tag != TAG_KMER && tag != TAG_CONTIG {
            return Err(CheckpointError::Corrupt {
                file: file.into(),
                detail: format!("offset {at}: unknown sequence tag {tag}"),
            });
        }
        tags.push(tag);
    }
    let kmer_count = tags.iter().filter(|&&t| t == TAG_KMER).count();
    let mut kmer_packed = Vec::with_capacity(kmer_count);
    for _ in 0..kmer_count {
        kmer_packed.push(r.u64().map_err(e)?);
    }
    let mut kmer_k = Vec::with_capacity(kmer_count);
    for _ in 0..kmer_count {
        kmer_k.push(r.u8().map_err(e)?);
    }
    let contig_count = n - kmer_count;
    let mut contig_lens = Vec::with_capacity(contig_count);
    for _ in 0..contig_count {
        contig_lens.push(r.u64().map_err(e)? as usize);
    }
    let mut contig_words: Vec<Vec<u64>> = Vec::with_capacity(contig_count);
    for &len in &contig_lens {
        let words = len.div_ceil(32);
        let mut v = Vec::with_capacity(words);
        for _ in 0..words {
            v.push(r.u64().map_err(e)?);
        }
        contig_words.push(v);
    }
    let mut edge_counts = Vec::with_capacity(n);
    for _ in 0..n {
        edge_counts.push(r.u32().map_err(e)? as usize);
    }
    let total_edges: usize = edge_counts.iter().sum();
    let mut edge_neighbors = Vec::with_capacity(total_edges);
    for _ in 0..total_edges {
        edge_neighbors.push(r.u64().map_err(e)?);
    }
    let mut edge_meta = Vec::with_capacity(total_edges);
    for _ in 0..total_edges {
        let at = r.position();
        edge_meta.push(unpack_edge_meta(file, at, r.u8().map_err(e)?)?);
    }
    let mut edge_coverages = Vec::with_capacity(total_edges);
    for _ in 0..total_edges {
        edge_coverages.push(r.u32().map_err(e)?);
    }
    if !r.is_empty() {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("{} trailing bytes", r.remaining()),
        });
    }

    // Reassemble rows from the columns. Every column was filled with its
    // exact counted length above, so consuming iterators (instead of
    // indexing, which the codec rules ban) can only underrun if the counts
    // themselves are inconsistent — which is reported as corruption.
    let underrun = |what: &str| CheckpointError::Corrupt {
        file: file.into(),
        detail: format!("{what} column shorter than its counted entries"),
    };
    let mut nodes = Vec::with_capacity(n);
    let mut kmers = kmer_packed.into_iter().zip(kmer_k);
    let mut contigs = contig_lens.into_iter().zip(contig_words);
    let mut edge_cols = edge_neighbors
        .into_iter()
        .zip(edge_meta)
        .zip(edge_coverages);
    let rows = ids.into_iter().zip(coverages).zip(tags).zip(edge_counts);
    for (i, (((id, coverage), tag), edge_count)) in rows.enumerate() {
        let seq = if tag == TAG_KMER {
            let (packed, k) = kmers.next().ok_or_else(|| underrun("k-mer"))?;
            let kmer =
                Kmer::from_packed(packed, k as usize).map_err(|err| CheckpointError::Corrupt {
                    file: file.into(),
                    detail: format!("k-mer column entry for node {i}: {err}"),
                })?;
            NodeSeq::Kmer(kmer)
        } else {
            let (len, words) = contigs.next().ok_or_else(|| underrun("contig"))?;
            let s =
                DnaString::from_raw_parts(words, len).map_err(|err| CheckpointError::Corrupt {
                    file: file.into(),
                    detail: format!("contig column entry for node {i}: {err}"),
                })?;
            NodeSeq::Contig(s)
        };
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let ((neighbor, (direction, polarity)), coverage) =
                edge_cols.next().ok_or_else(|| underrun("edge"))?;
            edges.push(Edge {
                neighbor,
                direction,
                polarity,
                coverage,
            });
        }
        nodes.push(AsmNode {
            id,
            seq,
            coverage,
            edges,
        });
    }
    Ok(nodes)
}

fn encode_metrics(w: &mut Writer<Vec<u8>>, m: &Metrics) -> Result<(), CheckpointError> {
    w.u64(m.supersteps as u64)?;
    w.u64(m.total_messages)?;
    w.u64(m.total_dropped)?;
    w.u64(m.total_compute_calls)?;
    w.u64(m.elapsed.as_nanos() as u64)?;
    w.bool(m.converged)?;
    w.f64(m.avg_frontier_density)?;
    w.u64(m.peak_store_resident_bytes)?;
    w.u64(m.total_cancellation_checks)?;
    w.u64(m.spilled_bytes)?;
    w.u64(m.spill_read_bytes)?;
    w.u64(m.spilled_runs)?;
    w.u64(m.per_superstep.len() as u64)?;
    for s in &m.per_superstep {
        w.u64(s.superstep as u64)?;
        w.u64(s.active_vertices as u64)?;
        w.u64(s.messages_sent)?;
        w.u64(s.messages_dropped)?;
        w.u64(s.elapsed.as_nanos() as u64)?;
        w.u64(s.compute_elapsed.as_nanos() as u64)?;
        w.u64(s.shuffle_elapsed.as_nanos() as u64)?;
        w.f64(s.pool_utilization)?;
        w.f64(s.frontier_density)?;
        w.u64(s.store_resident_bytes)?;
        w.f64(s.id_column_compression)?;
        w.u64(s.cancellation_checks)?;
        w.u64(s.spilled_bytes)?;
        w.u64(s.spill_read_bytes)?;
        w.u64(s.spilled_runs)?;
    }
    Ok(())
}

fn decode_metrics(file: &str, r: &mut Reader<'_>) -> Result<Metrics, CheckpointError> {
    let e = |err: BinError| bin_err(file, err);
    let supersteps = r.u64().map_err(e)? as usize;
    let total_messages = r.u64().map_err(e)?;
    let total_dropped = r.u64().map_err(e)?;
    let total_compute_calls = r.u64().map_err(e)?;
    let elapsed = Duration::from_nanos(r.u64().map_err(e)?);
    let converged = r.bool().map_err(e)?;
    let avg_frontier_density = r.f64().map_err(e)?;
    let peak_store_resident_bytes = r.u64().map_err(e)?;
    let total_cancellation_checks = r.u64().map_err(e)?;
    let spilled_bytes = r.u64().map_err(e)?;
    let spill_read_bytes = r.u64().map_err(e)?;
    let spilled_runs = r.u64().map_err(e)?;
    let n = r.u64().map_err(e)? as usize;
    let mut per_superstep = Vec::new();
    for _ in 0..n {
        per_superstep.push(SuperstepMetrics {
            superstep: r.u64().map_err(e)? as usize,
            active_vertices: r.u64().map_err(e)? as usize,
            messages_sent: r.u64().map_err(e)?,
            messages_dropped: r.u64().map_err(e)?,
            elapsed: Duration::from_nanos(r.u64().map_err(e)?),
            compute_elapsed: Duration::from_nanos(r.u64().map_err(e)?),
            shuffle_elapsed: Duration::from_nanos(r.u64().map_err(e)?),
            pool_utilization: r.f64().map_err(e)?,
            frontier_density: r.f64().map_err(e)?,
            store_resident_bytes: r.u64().map_err(e)?,
            id_column_compression: r.f64().map_err(e)?,
            cancellation_checks: r.u64().map_err(e)?,
            spilled_bytes: r.u64().map_err(e)?,
            spill_read_bytes: r.u64().map_err(e)?,
            spilled_runs: r.u64().map_err(e)?,
        });
    }
    Ok(Metrics {
        supersteps,
        total_messages,
        total_dropped,
        total_compute_calls,
        elapsed,
        converged,
        avg_frontier_density,
        peak_store_resident_bytes,
        total_cancellation_checks,
        spilled_bytes,
        spill_read_bytes,
        spilled_runs,
        per_superstep,
    })
}

fn encode_labels(labels: Option<&LabelOutcome>) -> Result<Vec<u8>, CheckpointError> {
    let mut w = Writer::new(Vec::new());
    match labels {
        None => w.bool(false)?,
        Some(outcome) => {
            w.bool(true)?;
            w.u64(outcome.labels.len() as u64)?;
            for (id, _) in &outcome.labels {
                w.u64(*id)?;
            }
            for (_, label) in &outcome.labels {
                w.u64(*label)?;
            }
            w.u64(outcome.ambiguous.len() as u64)?;
            for id in &outcome.ambiguous {
                w.u64(*id)?;
            }
            w.bool(outcome.used_cycle_fallback)?;
            encode_metrics(&mut w, &outcome.metrics)?;
        }
    }
    Ok(w.into_inner())
}

fn decode_labels(file: &str, bytes: &[u8]) -> Result<Option<LabelOutcome>, CheckpointError> {
    let mut r = Reader::new(bytes);
    let e = |err: BinError| bin_err(file, err);
    if !r.bool().map_err(e)? {
        if !r.is_empty() {
            return Err(CheckpointError::Corrupt {
                file: file.into(),
                detail: format!("{} trailing bytes", r.remaining()),
            });
        }
        return Ok(None);
    }
    let n = r.u64().map_err(e)? as usize;
    if n > bytes.len() {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("label count {n} exceeds file size {}", bytes.len()),
        });
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64().map_err(e)?);
    }
    let mut labels = Vec::with_capacity(n);
    for id in ids {
        labels.push((id, r.u64().map_err(e)?));
    }
    let n_amb = r.u64().map_err(e)? as usize;
    let mut ambiguous = Vec::with_capacity(n_amb.min(bytes.len()));
    for _ in 0..n_amb {
        ambiguous.push(r.u64().map_err(e)?);
    }
    let used_cycle_fallback = r.bool().map_err(e)?;
    let metrics = decode_metrics(file, &mut r)?;
    if !r.is_empty() {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("{} trailing bytes", r.remaining()),
        });
    }
    Ok(Some(LabelOutcome {
        labels,
        ambiguous,
        metrics,
        used_cycle_fallback,
    }))
}

fn encode_output(output: &[Contig]) -> Result<Vec<u8>, CheckpointError> {
    let mut w = Writer::new(Vec::new());
    w.u64(output.len() as u64)?;
    for c in output {
        w.u64(c.id)?;
    }
    for c in output {
        w.u32(c.coverage)?;
    }
    for c in output {
        w.u64(c.sequence.len() as u64)?;
    }
    for c in output {
        for &word in c.sequence.words() {
            w.u64(word)?;
        }
    }
    Ok(w.into_inner())
}

fn decode_output(file: &str, bytes: &[u8]) -> Result<Vec<Contig>, CheckpointError> {
    let mut r = Reader::new(bytes);
    let e = |err: BinError| bin_err(file, err);
    let n = r.u64().map_err(e)? as usize;
    if n > bytes.len() {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("contig count {n} exceeds file size {}", bytes.len()),
        });
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u64().map_err(e)?);
    }
    let mut coverages = Vec::with_capacity(n);
    for _ in 0..n {
        coverages.push(r.u32().map_err(e)?);
    }
    let mut lens = Vec::with_capacity(n);
    for _ in 0..n {
        lens.push(r.u64().map_err(e)? as usize);
    }
    // Row reassembly without indexing: all three columns were filled with
    // exactly `n` entries, so the zip below visits every row.
    let mut contigs = Vec::with_capacity(n);
    for (i, ((id, coverage), len)) in ids.into_iter().zip(coverages).zip(lens).enumerate() {
        let words = len.div_ceil(32);
        let mut v = Vec::with_capacity(words);
        for _ in 0..words {
            v.push(r.u64().map_err(e)?);
        }
        let sequence =
            DnaString::from_raw_parts(v, len).map_err(|err| CheckpointError::Corrupt {
                file: file.into(),
                detail: format!("contig {i}: {err}"),
            })?;
        contigs.push(Contig {
            id,
            sequence,
            coverage,
        });
    }
    if !r.is_empty() {
        return Err(CheckpointError::Corrupt {
            file: file.into(),
            detail: format!("{} trailing bytes", r.remaining()),
        });
    }
    Ok(contigs)
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

/// Pipeline-side inputs to [`save`]: the resume point and the identity of the
/// run taking the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Number of flattened stages completed (names the snapshot directory).
    pub completed_stages: usize,
    /// Per-stage-name round counters at the snapshot.
    pub rounds: Vec<(String, usize)>,
    /// Fingerprint of the pipeline structure + stage configurations.
    pub pipeline_fingerprint: u64,
    /// Worker count of the writing run.
    pub workers: usize,
}

/// Saves `state` as snapshot `stage-<completed_stages>` under `dir`, creating
/// the directory as needed. Section files are written first and the
/// `MANIFEST` last, so a crash mid-save never leaves a loadable half-written
/// snapshot; on success every older (or staler) `stage-*` sibling is pruned.
/// Returns the snapshot directory.
pub fn save(
    dir: &Path,
    state: &GraphState<'_>,
    meta: &CheckpointMeta,
) -> Result<PathBuf, CheckpointError> {
    save_with_reads_fingerprint(dir, state, meta, reads_fingerprint(state.reads))
}

/// [`save`] with a precomputed [`reads_fingerprint`] of `state.reads`. The
/// reads are immutable for the lifetime of a pipeline execution, so a caller
/// saving many snapshots of the same run (e.g. `CheckpointPolicy::EveryStage`)
/// fingerprints them once instead of re-hashing megabytes per stage.
pub fn save_with_reads_fingerprint(
    dir: &Path,
    state: &GraphState<'_>,
    meta: &CheckpointMeta,
    reads_fingerprint: u64,
) -> Result<PathBuf, CheckpointError> {
    let name = format!("stage-{:04}", meta.completed_stages);
    let ckpt = dir.join(&name);
    fs::create_dir_all(&ckpt)?;
    let [s_nodes, s_labels, s_contigs, s_ambiguous, s_output] = SECTIONS;
    let sections: [(&str, Vec<u8>); 5] = [
        (s_nodes, encode_nodes(&state.nodes)?),
        (s_labels, encode_labels(state.labels.as_ref())?),
        (s_contigs, encode_nodes(&state.contigs)?),
        (s_ambiguous, encode_nodes(&state.ambiguous_kmers)?),
        (s_output, encode_output(&state.output)?),
    ];
    let mut files = Vec::with_capacity(sections.len());
    for (file, bytes) in &sections {
        fs::write(ckpt.join(file), bytes)?;
        files.push(FileEntry {
            name: (*file).to_string(),
            len: bytes.len() as u64,
            checksum: checksum64(bytes),
        });
    }
    let manifest = Manifest {
        completed_stages: meta.completed_stages,
        rounds: meta.rounds.clone(),
        pipeline_fingerprint: meta.pipeline_fingerprint,
        reads_fingerprint,
        workers: meta.workers,
        rewired: state.rewired,
        files,
    };
    fs::write(ckpt.join(MANIFEST_FILE), manifest.encode()?)?;
    // Keep only this snapshot: prune every other stage-* sibling.
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let entry_name = entry.file_name();
        let entry_name = entry_name.to_string_lossy();
        if entry_name.starts_with("stage-") && entry_name != name.as_str() {
            let _ = fs::remove_dir_all(entry.path());
        }
    }
    Ok(ckpt)
}

/// The most advanced complete snapshot under `dir`: the highest-numbered
/// `stage-*` subdirectory that contains a `MANIFEST`. Returns `Ok(None)` if
/// the directory does not exist or holds no complete snapshot.
pub fn latest(dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(number) = name.strip_prefix("stage-") else {
            continue;
        };
        let Ok(number) = number.parse::<u64>() else {
            continue;
        };
        if !entry.path().join(MANIFEST_FILE).is_file() {
            continue; // half-written snapshot (crash mid-save): ignore
        }
        if best.as_ref().is_none_or(|(b, _)| number > *b) {
            best = Some((number, entry.path()));
        }
    }
    Ok(best.map(|(_, path)| path))
}

/// Loads the snapshot in `ckpt` (a `stage-*` directory), validating every
/// section against the manifest and the snapshot against `reads`. Returns
/// the restored state plus the manifest describing the resume point.
pub fn load<'r>(
    ckpt: &Path,
    reads: &'r ReadSet,
) -> Result<(GraphState<'r>, Manifest), CheckpointError> {
    let manifest_bytes = fs::read(ckpt.join(MANIFEST_FILE)).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckpointError::NotFound(ckpt.display().to_string())
        } else {
            e.into()
        }
    })?;
    let manifest = Manifest::decode(&manifest_bytes)?;
    let actual_reads_fp = reads_fingerprint(reads);
    if manifest.reads_fingerprint != actual_reads_fp {
        return Err(CheckpointError::Mismatch {
            what: "input reads".into(),
            expected: format!("{:#018x}", manifest.reads_fingerprint),
            actual: format!("{actual_reads_fp:#018x}"),
        });
    }
    let mut sections: Vec<Vec<u8>> = Vec::with_capacity(manifest.files.len());
    for entry in &manifest.files {
        let path = ckpt.join(&entry.name);
        let bytes = fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::Corrupt {
                    file: entry.name.clone(),
                    detail: "section file missing".into(),
                }
            } else {
                e.into()
            }
        })?;
        if bytes.len() as u64 != entry.len {
            return Err(CheckpointError::Truncated {
                file: entry.name.clone(),
                detail: format!(
                    "manifest records {} bytes, file has {}",
                    entry.len,
                    bytes.len()
                ),
            });
        }
        let checksum = checksum64(&bytes);
        if checksum != entry.checksum {
            return Err(CheckpointError::Corrupt {
                file: entry.name.clone(),
                detail: format!(
                    "checksum {:#018x} != recorded {:#018x}",
                    checksum, entry.checksum
                ),
            });
        }
        sections.push(bytes);
    }
    let expected: Vec<&str> = manifest.files.iter().map(|f| f.name.as_str()).collect();
    if expected != SECTIONS {
        return Err(CheckpointError::Corrupt {
            file: MANIFEST_FILE.into(),
            detail: format!("unexpected section list {expected:?}"),
        });
    }
    // The section list was just validated against SECTIONS, so the array
    // destructure (index-free, per the codec rules) cannot fail.
    let Ok([b_nodes, b_labels, b_contigs, b_ambiguous, b_output]) =
        <[Vec<u8>; 5]>::try_from(sections)
    else {
        return Err(CheckpointError::Corrupt {
            file: MANIFEST_FILE.into(),
            detail: "section count mismatch".into(),
        });
    };
    let [s_nodes, s_labels, s_contigs, s_ambiguous, s_output] = SECTIONS;
    let nodes = decode_nodes(s_nodes, &b_nodes)?;
    let labels = decode_labels(s_labels, &b_labels)?;
    let contigs = decode_nodes(s_contigs, &b_contigs)?;
    let ambiguous_kmers = decode_nodes(s_ambiguous, &b_ambiguous)?;
    let output = decode_output(s_output, &b_output)?;
    let state = GraphState {
        reads,
        nodes,
        labels,
        contigs,
        ambiguous_kmers,
        rewired: manifest.rewired,
        output,
    };
    Ok((state, manifest))
}

/// Loads the most advanced complete snapshot under `dir`
/// ([`latest`] + [`load`]); [`CheckpointError::NotFound`] if there is none.
pub fn load_latest<'r>(
    dir: &Path,
    reads: &'r ReadSet,
) -> Result<(GraphState<'r>, Manifest), CheckpointError> {
    let ckpt = latest(dir)?.ok_or_else(|| CheckpointError::NotFound(dir.display().to_string()))?;
    load(&ckpt, reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_seq::FastxRecord;
    use proptest::prelude::*;

    /// A deterministic SplitMix64 for building arbitrary states from a seed.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn arb_dna(mix: &mut Mix, max_len: u64) -> DnaString {
        let len = mix.below(max_len + 1) as usize;
        DnaString::from_bases_iter((0..len).map(|_| ppa_seq::Base::from_code((mix.below(4)) as u8)))
    }

    fn arb_node(mix: &mut Mix) -> AsmNode {
        let seq = if mix.below(2) == 0 {
            let k = 1 + mix.below(31) as usize;
            let bases: Vec<ppa_seq::Base> = (0..k)
                .map(|_| ppa_seq::Base::from_code(mix.below(4) as u8))
                .collect();
            NodeSeq::Kmer(Kmer::from_bases(&bases).unwrap())
        } else {
            NodeSeq::Contig(arb_dna(mix, 100))
        };
        let edges = (0..mix.below(5))
            .map(|_| Edge {
                neighbor: mix.next(),
                direction: if mix.below(2) == 0 {
                    Direction::Out
                } else {
                    Direction::In
                },
                polarity: Polarity::from_index(mix.below(4) as usize),
                coverage: mix.below(1000) as u32,
            })
            .collect();
        AsmNode {
            id: mix.next(),
            seq,
            coverage: mix.below(1000) as u32,
            edges,
        }
    }

    fn arb_metrics(mix: &mut Mix) -> Metrics {
        Metrics {
            supersteps: mix.below(50) as usize,
            total_messages: mix.next(),
            total_dropped: mix.below(100),
            total_compute_calls: mix.next(),
            elapsed: Duration::from_nanos(mix.below(1 << 40)),
            converged: mix.below(2) == 0,
            avg_frontier_density: (mix.below(1000) as f64) / 1000.0,
            peak_store_resident_bytes: mix.next(),
            total_cancellation_checks: mix.below(100),
            spilled_bytes: mix.next(),
            spill_read_bytes: mix.next(),
            spilled_runs: mix.below(64),
            per_superstep: (0..mix.below(4))
                .map(|s| SuperstepMetrics {
                    superstep: s as usize,
                    active_vertices: mix.below(10_000) as usize,
                    messages_sent: mix.next(),
                    messages_dropped: mix.below(10),
                    elapsed: Duration::from_nanos(mix.below(1 << 40)),
                    compute_elapsed: Duration::from_nanos(mix.below(1 << 40)),
                    shuffle_elapsed: Duration::from_nanos(mix.below(1 << 40)),
                    pool_utilization: (mix.below(1000) as f64) / 1000.0,
                    frontier_density: (mix.below(1000) as f64) / 1000.0,
                    store_resident_bytes: mix.next(),
                    id_column_compression: (mix.below(1000) as f64) / 1000.0,
                    cancellation_checks: mix.below(2),
                    spilled_bytes: mix.next(),
                    spill_read_bytes: mix.next(),
                    spilled_runs: mix.below(8),
                })
                .collect(),
        }
    }

    fn arb_state(mix: &mut Mix, reads: &'static ReadSet) -> GraphState<'static> {
        GraphState {
            reads,
            nodes: (0..mix.below(20)).map(|_| arb_node(mix)).collect(),
            labels: if mix.below(2) == 0 {
                Some(LabelOutcome {
                    labels: (0..mix.below(20))
                        .map(|_| (mix.next(), mix.next()))
                        .collect(),
                    ambiguous: (0..mix.below(10)).map(|_| mix.next()).collect(),
                    metrics: arb_metrics(mix),
                    used_cycle_fallback: mix.below(2) == 0,
                })
            } else {
                None
            },
            contigs: (0..mix.below(10)).map(|_| arb_node(mix)).collect(),
            ambiguous_kmers: (0..mix.below(10)).map(|_| arb_node(mix)).collect(),
            rewired: mix.below(2) == 0,
            output: (0..mix.below(10))
                .map(|_| Contig {
                    id: mix.next(),
                    sequence: arb_dna(mix, 200),
                    coverage: mix.below(1000) as u32,
                })
                .collect(),
        }
    }

    fn test_reads() -> &'static ReadSet {
        use std::sync::OnceLock;
        static READS: OnceLock<ReadSet> = OnceLock::new();
        READS.get_or_init(|| {
            ReadSet::from_records(vec![
                FastxRecord::new_fastq("r1", b"ACGTACGT".to_vec(), b"IIIIIIII".to_vec()),
                FastxRecord::new_fastq("r2", b"TTGCATGC".to_vec(), b"IIIIIIII".to_vec()),
            ])
        })
    }

    fn meta(completed: usize) -> CheckpointMeta {
        CheckpointMeta {
            completed_stages: completed,
            rounds: vec![("construct".into(), 1), ("label".into(), 2)],
            pipeline_fingerprint: 0xfeed_beef,
            workers: 2,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppa-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_an_arbitrary_state() {
        let reads = test_reads();
        let mut mix = Mix(42);
        let state = arb_state(&mut mix, reads);
        let dir = tmp_dir("roundtrip");
        let ckpt = save(&dir, &state, &meta(3)).unwrap();
        assert!(ckpt.ends_with("stage-0003"));
        let (restored, manifest) = load_latest(&dir, reads).unwrap();
        assert_eq!(restored, state);
        assert_eq!(manifest.completed_stages, 3);
        assert_eq!(manifest.rounds, meta(3).rounds);
        assert_eq!(manifest.pipeline_fingerprint, 0xfeed_beef);
        assert_eq!(manifest.workers, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_save_prunes_older_snapshots() {
        let reads = test_reads();
        let mut mix = Mix(7);
        let state = arb_state(&mut mix, reads);
        let dir = tmp_dir("prune");
        save(&dir, &state, &meta(1)).unwrap();
        save(&dir, &state, &meta(2)).unwrap();
        let kept: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(kept, vec!["stage-0002".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_without_manifest_is_invisible() {
        let reads = test_reads();
        let mut mix = Mix(8);
        let state = arb_state(&mut mix, reads);
        let dir = tmp_dir("no-manifest");
        let ckpt = save(&dir, &state, &meta(1)).unwrap();
        // Simulate a crash between the section writes and the manifest write.
        fs::remove_file(ckpt.join(MANIFEST_FILE)).unwrap();
        assert_eq!(latest(&dir).unwrap(), None);
        assert!(matches!(
            load_latest(&dir, reads),
            Err(CheckpointError::NotFound(_))
        ));
        // A directory that never existed behaves the same.
        assert_eq!(latest(&dir.join("nope")).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_section_is_a_typed_error() {
        let reads = test_reads();
        let mut mix = Mix(9);
        let mut state = arb_state(&mut mix, reads);
        // Ensure there is something to truncate.
        state.nodes.push(arb_node(&mut mix));
        let dir = tmp_dir("truncate");
        let ckpt = save(&dir, &state, &meta(1)).unwrap();
        let path = ckpt.join("nodes.col");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_latest(&dir, reads).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated { ref file, .. } if file == "nodes.col"),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_section_is_a_typed_error() {
        let reads = test_reads();
        let mut mix = Mix(10);
        let mut state = arb_state(&mut mix, reads);
        state.contigs.push(arb_node(&mut mix));
        let dir = tmp_dir("corrupt");
        let ckpt = save(&dir, &state, &meta(1)).unwrap();
        let path = ckpt.join("contigs.col");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF; // flip bits, keep the length
        fs::write(&path, &bytes).unwrap();
        let err = load_latest(&dir, reads).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { ref file, .. } if file == "contigs.col"),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_reads_are_rejected() {
        let reads = test_reads();
        let mut mix = Mix(11);
        let state = arb_state(&mut mix, reads);
        let dir = tmp_dir("reads-mismatch");
        save(&dir, &state, &meta(1)).unwrap();
        let other = ReadSet::from_records(vec![FastxRecord::new_fastq(
            "other",
            b"GGGG".to_vec(),
            b"IIII".to_vec(),
        )]);
        let err = load_latest(&dir, &other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Mismatch { ref what, .. } if what == "input reads"),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_manifest_is_a_typed_error() {
        let reads = test_reads();
        let mut mix = Mix(12);
        let state = arb_state(&mut mix, reads);
        let dir = tmp_dir("bad-manifest");
        let ckpt = save(&dir, &state, &meta(1)).unwrap();
        let path = ckpt.join(MANIFEST_FILE);
        // Bad magic.
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_latest(&dir, reads),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Truncated manifest.
        bytes[0] ^= 0xFF; // restore magic
        fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            load_latest(&dir, reads),
            Err(CheckpointError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_display_their_context() {
        let errs = [
            CheckpointError::Io("disk full".into()).to_string(),
            CheckpointError::Truncated {
                file: "nodes.col".into(),
                detail: "short".into(),
            }
            .to_string(),
            CheckpointError::Corrupt {
                file: "labels.col".into(),
                detail: "bad tag".into(),
            }
            .to_string(),
            CheckpointError::Mismatch {
                what: "pipeline config".into(),
                expected: "a".into(),
                actual: "b".into(),
            }
            .to_string(),
            CheckpointError::NotFound("/tmp/x".into()).to_string(),
        ];
        assert!(errs[0].contains("disk full"));
        assert!(errs[1].contains("nodes.col"));
        assert!(errs[2].contains("labels.col") && errs[2].contains("bad tag"));
        assert!(errs[3].contains("pipeline config"));
        assert!(errs[4].contains("/tmp/x"));
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        let mut h = Fnv64::new();
        h.write_str("a");
        let ha = h.finish();
        let mut h = Fnv64::new();
        h.write_str("b");
        assert_ne!(ha, h.finish());
    }

    #[test]
    fn striped_checksum_detects_flips_padding_and_length() {
        // Deterministic, length-sensitive, and sensitive to a single bit flip
        // in every position — including the zero-padded tail, where padding
        // must not collide with genuine trailing zero bytes.
        let mut mix = Mix(7);
        for len in [0usize, 1, 7, 8, 31, 32, 33, 64, 100] {
            let data: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
            assert_eq!(checksum64(&data), checksum64(&data.clone()));
            for i in 0..len {
                let mut flipped = data.clone();
                flipped[i] ^= 1;
                assert_ne!(checksum64(&data), checksum64(&flipped), "flip at {i}/{len}");
            }
            let mut extended = data.clone();
            extended.push(0);
            assert_ne!(checksum64(&data), checksum64(&extended), "len {len}+1 zero");
        }
    }

    /// Body of the round-trip property (kept out of the `proptest!` macro to
    /// bound its token-munching expansion depth): arbitrary `GraphState` →
    /// bytes → `GraphState` is the identity, and truncating the node section
    /// at any prefix yields a typed error, never a panic.
    fn check_roundtrip_for_seed(seed: u64) -> Result<(), String> {
        let reads = test_reads();
        let mut mix = Mix(seed);
        let state = arb_state(&mut mix, reads);

        // In-memory round-trip of every section codec.
        let nodes = decode_nodes("nodes.col", &encode_nodes(&state.nodes).unwrap())
            .map_err(|e| e.to_string())?;
        if nodes != state.nodes {
            return Err(format!("node round-trip diverged for seed {seed}"));
        }
        let labels = decode_labels("labels.col", &encode_labels(state.labels.as_ref()).unwrap())
            .map_err(|e| e.to_string())?;
        if labels != state.labels {
            return Err(format!("label round-trip diverged for seed {seed}"));
        }
        let output = decode_output("output.col", &encode_output(&state.output).unwrap())
            .map_err(|e| e.to_string())?;
        if output != state.output {
            return Err(format!("output round-trip diverged for seed {seed}"));
        }

        // Any truncation of the node bytes is rejected with a typed error
        // (decoders must never panic on malformed input).
        let bytes = encode_nodes(&state.nodes).unwrap();
        let cut = (seed as usize) % bytes.len().max(1);
        if cut < bytes.len() && decode_nodes("nodes.col", &bytes[..cut]).is_ok() {
            return Err(format!("truncation at {cut} not rejected for seed {seed}"));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_state_roundtrip_and_truncation_safety(seed in 0u64..1_000_000) {
            let outcome = check_roundtrip_for_seed(seed);
            prop_assert_eq!(outcome, Ok(()));
        }
    }
}
