//! Compact adjacency representations for k-mer vertices (Figure 8).
//!
//! Right after DBG construction the graph consists solely of k-mer vertices,
//! and the overlapping k-mers make this the most memory-hungry stage of the
//! whole pipeline. The paper therefore stores a k-mer vertex's neighbourhood
//! as a **32-bit bitmap**: one bit for every combination of edge polarity
//! (⟨L:L⟩, ⟨L:H⟩, ⟨H:L⟩, ⟨H:H⟩), edge direction (in/out) and appended/prepended
//! nucleotide (A/C/G/T) — 4 × 2 × 4 = 32 possibilities — plus one coverage
//! counter per set bit. The neighbour's ID is not stored at all: it can be
//! recomputed from the owning k-mer and the bit's meaning
//! ([`EdgeSlot::neighbor_of`]).
//!
//! The per-neighbour **8-bit item** of Figure 8(b) ([`CompactNeighbor`]) is the
//! uncompressed equivalent used once vertices start tracking heterogeneous
//! neighbours; it encodes the same three coordinates in a single byte.

use crate::polarity::{Direction, Polarity};
use ppa_seq::{Base, Kmer};
use serde::{Deserialize, Serialize};

/// One of the 32 possible adjacency "slots" of a k-mer vertex: an edge with a
/// given polarity and direction whose neighbour differs from the owning k-mer
/// by one appended (out) or prepended (in) base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeSlot {
    /// Edge polarity ⟨source:target⟩ in the edge's stored direction.
    pub polarity: Polarity,
    /// Whether the owning vertex is the source (`Out`) or target (`In`).
    pub direction: Direction,
    /// The base appended to the suffix (out-edges) or prepended to the prefix
    /// (in-edges) of the observed k-mer to obtain the observed neighbour.
    pub base: Base,
}

impl EdgeSlot {
    /// Bit index of this slot inside the 32-bit bitmap.
    #[inline]
    pub fn bit(&self) -> u32 {
        (self.polarity.index() as u32) * 8
            + if self.direction == Direction::Out {
                4
            } else {
                0
            }
            + self.base.code() as u32
    }

    /// Inverse of [`EdgeSlot::bit`].
    #[inline]
    pub fn from_bit(bit: u32) -> EdgeSlot {
        debug_assert!(bit < 32);
        EdgeSlot {
            polarity: Polarity::from_index((bit / 8) as usize),
            direction: if bit % 8 >= 4 {
                Direction::Out
            } else {
                Direction::In
            },
            base: Base::from_code((bit % 4) as u8),
        }
    }

    /// Reconstructs the *canonical* neighbour k-mer this slot refers to, given
    /// the owning (canonical) k-mer.
    ///
    /// This is the derivation the paper walks through for its Figure 8(b)
    /// example: orient the owning k-mer according to its own polarity label,
    /// slide the window by one base in the edge's direction, then canonicalise
    /// the result.
    pub fn neighbor_of(&self, own: &Kmer) -> Kmer {
        debug_assert!(own.is_canonical());
        match self.direction {
            Direction::Out => {
                let observed_source = match self.polarity.source_label() {
                    ppa_seq::Orientation::Forward => *own,
                    ppa_seq::Orientation::ReverseComplement => own.reverse_complement(),
                };
                observed_source.extend_right(self.base).canonical().kmer
            }
            Direction::In => {
                let observed_target = match self.polarity.target_label() {
                    ppa_seq::Orientation::Forward => *own,
                    ppa_seq::Orientation::ReverseComplement => own.reverse_complement(),
                };
                observed_target.extend_left(self.base).canonical().kmer
            }
        }
    }

    /// Encodes the slot as the 8-bit adjacency item of Figure 8(b):
    /// `0 0 0 X X Y Z Z` with `XX` = base, `Y` = in/out, `ZZ` = polarity.
    #[inline]
    pub fn to_compact(&self) -> CompactNeighbor {
        CompactNeighbor(
            (self.base.code() << 3)
                | (u8::from(self.direction == Direction::In) << 2)
                | self.polarity.index() as u8,
        )
    }
}

/// The 8-bit per-neighbour adjacency item of Figure 8(b).
///
/// The value `0b1000_0000` is the NULL marker indicating a dead end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompactNeighbor(pub u8);

impl CompactNeighbor {
    /// The NULL (dead-end) marker.
    pub const NULL: CompactNeighbor = CompactNeighbor(0b1000_0000);

    /// Whether this item is the NULL marker.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.0 & 0b1000_0000 != 0
    }

    /// Decodes the item into an [`EdgeSlot`]; `None` for the NULL marker.
    #[inline]
    pub fn decode(&self) -> Option<EdgeSlot> {
        if self.is_null() {
            return None;
        }
        Some(EdgeSlot {
            base: Base::from_code((self.0 >> 3) & 0b11),
            direction: if self.0 & 0b100 != 0 {
                Direction::In
            } else {
                Direction::Out
            },
            polarity: Polarity::from_index((self.0 & 0b11) as usize),
        })
    }
}

/// The packed 32-bit adjacency of a k-mer vertex (Figure 8a): a bitmap of the
/// occupied [`EdgeSlot`]s plus one coverage counter per occupied slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedAdj {
    bitmap: u32,
    /// Coverage counters, ordered by ascending bit index of the occupied slots.
    coverages: Vec<u32>,
}

impl PackedAdj {
    /// Creates an empty adjacency.
    pub fn new() -> PackedAdj {
        PackedAdj::default()
    }

    /// Number of occupied slots (the vertex degree, counting parallel edges of
    /// different polarity separately, as the DBG does).
    #[inline]
    pub fn degree(&self) -> usize {
        self.bitmap.count_ones() as usize
    }

    /// Whether no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bitmap == 0
    }

    /// The raw bitmap.
    #[inline]
    pub fn bitmap(&self) -> u32 {
        self.bitmap
    }

    /// Position of `bit` within the coverage vector.
    #[inline]
    fn slot_position(&self, bit: u32) -> usize {
        (self.bitmap & ((1u32 << bit) - 1)).count_ones() as usize
    }

    /// Adds `coverage` to the given slot, creating it if absent.
    pub fn add(&mut self, slot: EdgeSlot, coverage: u32) {
        let bit = slot.bit();
        let pos = self.slot_position(bit);
        if self.bitmap & (1 << bit) != 0 {
            self.coverages[pos] = self.coverages[pos].saturating_add(coverage);
        } else {
            self.bitmap |= 1 << bit;
            self.coverages.insert(pos, coverage);
        }
    }

    /// The coverage of a slot, or `None` if the slot is unoccupied.
    pub fn coverage(&self, slot: EdgeSlot) -> Option<u32> {
        let bit = slot.bit();
        if self.bitmap & (1 << bit) == 0 {
            None
        } else {
            Some(self.coverages[self.slot_position(bit)])
        }
    }

    /// Removes a slot, returning its coverage if it was present.
    pub fn remove(&mut self, slot: EdgeSlot) -> Option<u32> {
        let bit = slot.bit();
        if self.bitmap & (1 << bit) == 0 {
            return None;
        }
        let pos = self.slot_position(bit);
        self.bitmap &= !(1 << bit);
        Some(self.coverages.remove(pos))
    }

    /// Merges another partial adjacency into this one, summing coverages of
    /// slots present in both (used by the reduce step of DBG construction when
    /// combining the partial adjacency lists produced by different workers).
    pub fn merge(&mut self, other: &PackedAdj) {
        for (slot, cov) in other.iter() {
            self.add(slot, cov);
        }
    }

    /// Iterates over the occupied slots and their coverages, in bit order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeSlot, u32)> + '_ {
        let mut remaining = self.bitmap;
        let mut idx = 0usize;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let bit = remaining.trailing_zeros();
            remaining &= remaining - 1;
            let cov = self.coverages[idx];
            idx += 1;
            Some((EdgeSlot::from_bit(bit), cov))
        })
    }

    /// Approximate in-memory footprint in bytes (bitmap + counters), used to
    /// report the memory benefit of the packed format.
    pub fn footprint_bytes(&self) -> usize {
        4 + 4 * self.coverages.len()
    }
}

/// Computes, for an observed (k+1)-mer with the given coverage, the two
/// partial adjacency contributions it induces: one slot on its prefix vertex
/// (an out-edge) and one slot on its suffix vertex (an in-edge).
///
/// Returns `((source_vertex, source_slot), (target_vertex, target_slot))`.
/// The (k+1)-mer should be passed in its canonical orientation (the counting
/// key of construction phase (i)); passing the other orientation yields the
/// equivalent edge expressed in the opposite direction (Property 1).
pub fn edge_contributions(kplus1: &Kmer) -> ((Kmer, EdgeSlot), (Kmer, EdgeSlot)) {
    let prefix = kplus1.prefix();
    let suffix = kplus1.suffix();
    let src = prefix.canonical();
    let tgt = suffix.canonical();
    let polarity = Polarity::from_labels(src.orientation, tgt.orientation);
    let source_slot = EdgeSlot {
        polarity,
        direction: Direction::Out,
        base: kplus1.last(),
    };
    let target_slot = EdgeSlot {
        polarity,
        direction: Direction::In,
        base: kplus1.first(),
    };
    ((src.kmer, source_slot), (tgt.kmer, target_slot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn km(s: &str) -> Kmer {
        Kmer::from_str_exact(s).unwrap()
    }

    #[test]
    fn slot_bit_roundtrip() {
        for bit in 0..32 {
            let slot = EdgeSlot::from_bit(bit);
            assert_eq!(slot.bit(), bit);
        }
    }

    #[test]
    fn compact_item_matches_paper_example_1() {
        // Figure 8(b), item ①: bitmap 00010111 = in-neighbour of "ACGG",
        // polarity ⟨H:H⟩, prepend G; neighbour works out to "CGGC".
        let item = CompactNeighbor(0b0001_0111);
        let slot = item.decode().unwrap();
        assert_eq!(slot.base, Base::G);
        assert_eq!(slot.direction, Direction::In);
        assert_eq!(slot.polarity, Polarity::HH);
        assert_eq!(slot.neighbor_of(&km("ACGG")).to_string(), "CGGC");
        assert_eq!(slot.to_compact(), item);
    }

    #[test]
    fn compact_item_matches_paper_example_2() {
        // Figure 8(b), item ②: bitmap 00000010 = out-neighbour of "ACGG",
        // polarity ⟨H:L⟩, append A; neighbour works out to "CGTA".
        let item = CompactNeighbor(0b0000_0010);
        let slot = item.decode().unwrap();
        assert_eq!(slot.base, Base::A);
        assert_eq!(slot.direction, Direction::Out);
        assert_eq!(slot.polarity, Polarity::HL);
        assert_eq!(slot.neighbor_of(&km("ACGG")).to_string(), "CGTA");
        assert_eq!(slot.to_compact(), item);
    }

    #[test]
    fn null_compact_item() {
        assert!(CompactNeighbor::NULL.is_null());
        assert_eq!(CompactNeighbor::NULL.0, 0b1000_0000);
        assert!(CompactNeighbor::NULL.decode().is_none());
        assert!(!CompactNeighbor(0).is_null());
    }

    #[test]
    fn packed_adj_add_get_remove() {
        let mut adj = PackedAdj::new();
        assert!(adj.is_empty());
        let a = EdgeSlot {
            polarity: Polarity::LL,
            direction: Direction::Out,
            base: Base::C,
        };
        let b = EdgeSlot {
            polarity: Polarity::HH,
            direction: Direction::In,
            base: Base::T,
        };
        adj.add(a, 5);
        adj.add(b, 9);
        adj.add(a, 2); // merges coverage
        assert_eq!(adj.degree(), 2);
        assert_eq!(adj.coverage(a), Some(7));
        assert_eq!(adj.coverage(b), Some(9));
        assert_eq!(
            adj.coverage(EdgeSlot {
                polarity: Polarity::LH,
                direction: Direction::Out,
                base: Base::A
            }),
            None
        );
        assert_eq!(adj.remove(a), Some(7));
        assert_eq!(adj.remove(a), None);
        assert_eq!(adj.degree(), 1);
        assert_eq!(
            adj.coverage(b),
            Some(9),
            "removal must not disturb other slots"
        );
    }

    #[test]
    fn packed_adj_iteration_and_merge() {
        let mut a = PackedAdj::new();
        let mut b = PackedAdj::new();
        let s1 = EdgeSlot {
            polarity: Polarity::LL,
            direction: Direction::Out,
            base: Base::A,
        };
        let s2 = EdgeSlot {
            polarity: Polarity::LH,
            direction: Direction::In,
            base: Base::G,
        };
        let s3 = EdgeSlot {
            polarity: Polarity::HL,
            direction: Direction::Out,
            base: Base::T,
        };
        a.add(s1, 1);
        a.add(s2, 2);
        b.add(s2, 3);
        b.add(s3, 4);
        a.merge(&b);
        let collected: Vec<(EdgeSlot, u32)> = a.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(a.coverage(s1), Some(1));
        assert_eq!(a.coverage(s2), Some(5));
        assert_eq!(a.coverage(s3), Some(4));
        assert!(a.footprint_bytes() <= 4 + 4 * 32);
    }

    #[test]
    fn edge_contributions_simple_forward_edge() {
        // 3-mer "ATT" (canonical: ATT vs rc AAT → AAT is smaller! Let's check:
        // AAT < ATT, so canonical form of this (k+1)-mer is AAT.) Use "ACG"
        // instead: rc(ACG) = CGT, canonical = ACG. Prefix "AC" (canonical,
        // rc=GT → AC), suffix "CG" (palindrome).
        let e = km("ACG");
        let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&e);
        assert_eq!(src.to_string(), "AC");
        assert_eq!(tgt.to_string(), "CG");
        assert_eq!(s_slot.direction, Direction::Out);
        assert_eq!(t_slot.direction, Direction::In);
        assert_eq!(s_slot.polarity, Polarity::LL);
        assert_eq!(t_slot.polarity, Polarity::LL);
        assert_eq!(s_slot.base, Base::G);
        assert_eq!(t_slot.base, Base::A);
        // The slots must point back at each other.
        assert_eq!(s_slot.neighbor_of(&src), tgt);
        assert_eq!(t_slot.neighbor_of(&tgt), src);
    }

    #[test]
    fn edge_contributions_with_reverse_complement_vertex() {
        // Figure 6 example: (k+1)-mer "AGT" (k=2). rc(AGT)=ACT < AGT, so the
        // canonical counting key is ACT; but the edge it represents is
        // AG→GT ⇔ AC→AG reversed... Verify via the paper's stitching example:
        // edge "AG"→"GT" where "GT" is stored as canonical "AC" with label H.
        let e = km("AGT");
        let canon = e.canonical().kmer; // ACT
        let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&canon);
        // ACT: prefix AC (canonical), suffix CT → canonical AG with label H.
        assert_eq!(src.to_string(), "AC");
        assert_eq!(tgt.to_string(), "AG");
        assert_eq!(s_slot.polarity, Polarity::LH);
        // Neighbour derivation must be mutually consistent.
        assert_eq!(s_slot.neighbor_of(&src), tgt);
        assert_eq!(t_slot.neighbor_of(&tgt), src);
    }

    proptest! {
        #[test]
        fn prop_edge_contributions_are_mutually_consistent(
            codes in proptest::collection::vec(0u8..4, 2..=31)
        ) {
            let bases: Vec<Base> = codes.iter().map(|c| Base::from_code(*c)).collect();
            let kp1 = Kmer::from_bases(&bases).unwrap().canonical().kmer;
            let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&kp1);
            prop_assert!(src.is_canonical());
            prop_assert!(tgt.is_canonical());
            // Each side's slot reconstructs the other side.
            prop_assert_eq!(s_slot.neighbor_of(&src), tgt);
            prop_assert_eq!(t_slot.neighbor_of(&tgt), src);
            // Compact encoding round-trips.
            prop_assert_eq!(s_slot.to_compact().decode().unwrap(), s_slot);
            prop_assert_eq!(t_slot.to_compact().decode().unwrap(), t_slot);
        }

        #[test]
        fn prop_packed_adj_tracks_reference_map(
            ops in proptest::collection::vec((0u32..32, 1u32..100), 0..60)
        ) {
            use std::collections::HashMap;
            let mut adj = PackedAdj::new();
            let mut reference: HashMap<u32, u32> = HashMap::new();
            for (bit, cov) in ops {
                adj.add(EdgeSlot::from_bit(bit), cov);
                *reference.entry(bit).or_insert(0) += cov;
            }
            prop_assert_eq!(adj.degree(), reference.len());
            for (bit, cov) in &reference {
                prop_assert_eq!(adj.coverage(EdgeSlot::from_bit(*bit)), Some(*cov));
            }
            let from_iter: HashMap<u32, u32> =
                adj.iter().map(|(s, c)| (s.bit(), c)).collect();
            prop_assert_eq!(from_iter, reference);
        }
    }
}
