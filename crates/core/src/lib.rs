//! # PPA-assembler
//!
//! A Rust reproduction of **"Scalable De Novo Genome Assembly Using Pregel"**
//! (Yan et al., ICDE 2018): a toolkit of de-Bruijn-graph based genome-assembly
//! operations, each implemented as a *Practical Pregel Algorithm* on top of the
//! [`ppa_pregel`] vertex-centric framework.
//!
//! The toolkit follows the operation diagram of Figure 10 in the paper:
//!
//! 1. **DBG construction** ([`ops::construct`]) — reads → k-mer vertices with
//!    packed adjacency bitmaps, via two mini-MapReduce phases with coverage
//!    filtering.
//! 2. **Contig labeling** ([`ops::label`], [`ops::label_sv`]) — marks every
//!    maximal unambiguous path with a unique label, using either bidirectional
//!    list ranking (the BPPA the paper recommends) or the simplified S-V
//!    connected-components algorithm.
//! 3. **Contig merging** ([`ops::merge`]) — groups labelled vertices and
//!    stitches their sequences into contig vertices, respecting edge polarity.
//! 4. **Bubble filtering** ([`ops::bubble`]) — removes low-coverage contigs
//!    that parallel a higher-coverage contig between the same two ambiguous
//!    vertices within a small edit distance.
//! 5. **Tip removing** ([`ops::tip`]) — removes short dangling paths via the
//!    REQUEST/DELETE message protocol.
//!
//! [`workflow::assemble`] wires the operations into the paper's evaluation
//! workflow (①②③④⑤⑥②③ — grow contigs once more after error correction), and
//! every operation can also be called individually to build custom pipelines.
//!
//! ## Build your own workflow
//!
//! The operations are also available as first-class [`pipeline::Stage`]s
//! composed through the [`pipeline::Pipeline`] builder: `.then(stage)` chains
//! stages over a shared [`pipeline::GraphState`], `.repeat(n, stages)`
//! expresses correction loops, and `.observe(observer)` attaches
//! [`pipeline::PipelineObserver`] hooks for timing/stats — the
//! [`stats::WorkflowStats`] every `assemble()` run returns is itself such an
//! observer. See the [`pipeline`] module docs for a worked example;
//! [`pipeline::Pipeline::paper_workflow`] is the preset `assemble()` uses.
//!
//! ## Quick start
//!
//! ```
//! use ppa_assembler::workflow::{assemble, AssemblyConfig};
//! use ppa_readsim::{GenomeConfig, ReadSimConfig};
//!
//! // Simulate a small error-free read set...
//! let reference = GenomeConfig { length: 2_000, repeat_families: 0, ..Default::default() }
//!     .generate();
//! let reads = ReadSimConfig::error_free(100, 20.0).simulate(&reference);
//!
//! // ...and assemble it.
//! let config = AssemblyConfig { k: 21, workers: 2, ..Default::default() };
//! let assembly = assemble(&reads, &config);
//! assert!(!assembly.contigs.is_empty());
//! assert!(assembly.stats.total_elapsed.as_nanos() > 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adj;
pub mod checkpoint;
pub mod ids;
pub mod node;
pub mod ops;
pub mod pipeline;
pub mod polarity;
pub mod stats;
pub mod workflow;

pub use adj::{edge_contributions, CompactNeighbor, EdgeSlot, PackedAdj};
pub use checkpoint::{CheckpointError, CheckpointMeta, Manifest};
pub use ids::NULL_ID;
pub use node::{AsmNode, Edge, KmerVertex, NodeSeq, VertexType};
pub use pipeline::{
    CheckpointPolicy, GraphState, Pipeline, PipelineError, PipelineObserver, Stage, StageDetails,
    StageReport,
};
pub use polarity::{Direction, Polarity, Side};
pub use ppa_pregel::{CancelReason, JobControl};
pub use workflow::{
    assemble, assemble_with_checkpoints, assemble_with_control, read_input, read_input_path,
    resume_assembly, try_assemble, Assembly, AssemblyConfig, Contig, LabelingAlgorithm,
};
