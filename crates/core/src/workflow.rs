//! The assembly workflow: the paper's evaluation pipeline (Figure 10,
//! workflow ①②③④⑤⑥②③) behind one function.
//!
//! [`assemble`] runs: DBG construction → contig labeling → contig merging →
//! (bubble filtering → tip removing → labeling → merging)×`error_correction_rounds`,
//! with every intermediate hand-off performed in memory (the `convert`
//! extension). It is a thin wrapper over
//! [`Pipeline::paper_workflow`](crate::pipeline::Pipeline::paper_workflow)
//! with [`WorkflowStats`] attached as the
//! observer, so the bench harnesses can regenerate the paper's tables and
//! figures from [`Assembly::stats`]. Users who want a different strategy
//! compose their own [`crate::pipeline::Pipeline`] (or call the operations in
//! [`crate::ops`] directly).

use crate::pipeline::{CheckpointPolicy, GraphState, Pipeline, PipelineError};
use crate::stats::{n50, WorkflowStats};
use ppa_pregel::{ExecCtx, JobControl, SpillPolicy};
use ppa_seq::{DnaString, FastxRecord, ReadSet, SeqError};
use serde::{Deserialize, Serialize};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// Which algorithm performs contig labeling (operation ②).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelingAlgorithm {
    /// Bidirectional list ranking (the BPPA; the paper's recommended choice).
    ListRanking,
    /// The simplified Shiloach–Vishkin connected-components algorithm.
    SimplifiedSV,
}

/// End-to-end assembly configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyConfig {
    /// k-mer size (the paper uses 31).
    pub k: usize,
    /// Coverage threshold θ of DBG construction: (k+1)-mers observed at most
    /// this many times are discarded as sequencing errors.
    pub min_kmer_coverage: u32,
    /// Tip-length threshold (paper: 80).
    pub tip_length_threshold: usize,
    /// Bubble-filtering edit-distance threshold (paper: 5).
    pub bubble_edit_distance: usize,
    /// Number of workers for every operation.
    pub workers: usize,
    /// Contig-labeling algorithm.
    pub labeling: LabelingAlgorithm,
    /// How many error-correction + re-merging rounds to run after the first
    /// merge (the paper's evaluation workflow uses 1).
    pub error_correction_rounds: usize,
    /// Contigs shorter than this are dropped from the final output.
    pub min_contig_length: usize,
    /// Out-of-core policy: with [`SpillPolicy::At`], every operation of the
    /// workflow (the Pregel jobs of labeling and tip removing, and the mini-
    /// MapReduce phases of construction) may spill sorted shuffle runs and
    /// sealed partition columns to disk once its resident bytes exceed the
    /// cap, bounding peak memory at the cost of extra I/O. The default
    /// [`SpillPolicy::Off`] keeps the run byte-identical to the purely
    /// resident engine.
    pub spill: SpillPolicy,
    /// Persistent execution context to run every operation on. When `None`
    /// (the default), [`assemble`] builds one context for the run — either
    /// way, all five operations of all rounds execute on a single long-lived
    /// worker pool. Supply a context to share the pool across several
    /// assemblies (e.g. a parameter sweep). Runtime-only: not part of the
    /// serialised configuration, and its pool size must match `workers`.
    #[serde(skip)]
    pub exec: Option<ExecCtx>,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        AssemblyConfig {
            k: 31,
            min_kmer_coverage: 1,
            tip_length_threshold: 80,
            bubble_edit_distance: 5,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            labeling: LabelingAlgorithm::ListRanking,
            error_correction_rounds: 1,
            min_contig_length: 0,
            spill: SpillPolicy::Off,
            exec: None,
        }
    }
}

/// One assembled contig.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contig {
    /// Contig vertex ID (Figure 7c).
    pub id: u64,
    /// The contig sequence.
    pub sequence: DnaString,
    /// Contig coverage (minimum merged edge coverage).
    pub coverage: u32,
}

impl Contig {
    /// Contig length in base pairs.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the contig is empty (never produced by the pipeline).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// The result of an assembly run.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// The assembled contigs, longest first.
    pub contigs: Vec<Contig>,
    /// Per-stage statistics.
    pub stats: WorkflowStats,
}

impl Assembly {
    /// Total assembled bases.
    pub fn total_length(&self) -> usize {
        self.contigs.iter().map(Contig::len).sum()
    }

    /// N50 of the assembly.
    pub fn n50(&self) -> usize {
        n50(&self.contigs.iter().map(Contig::len).collect::<Vec<_>>())
    }

    /// Length of the largest contig (0 if empty).
    pub fn largest_contig(&self) -> usize {
        self.contigs.first().map(Contig::len).unwrap_or(0)
    }

    /// GC fraction over all contigs.
    pub fn gc_fraction(&self) -> f64 {
        let (gc, total) = self
            .contigs
            .iter()
            .fold((0usize, 0usize), |(gc, total), c| {
                let counts = c.sequence.base_counts();
                (gc + counts[1] + counts[2], total + c.len())
            });
        if total == 0 {
            0.0
        } else {
            gc as f64 / total as f64
        }
    }

    /// Converts the contigs to FASTA records (e.g. for QUAST-style assessment
    /// or writing to disk).
    pub fn to_fasta(&self) -> ReadSet {
        ReadSet::from_records(
            self.contigs
                .iter()
                .map(|c| {
                    FastxRecord::new_fasta(
                        format!("contig_{:#x}_cov_{}", c.id, c.coverage),
                        c.sequence.to_ascii().into_bytes(),
                    )
                })
                .collect(),
        )
    }
}

/// Runs the standard PPA-assembler workflow over a read set.
///
/// Thin wrapper over the composable pipeline API: builds
/// [`Pipeline::paper_workflow`] for `config`, attaches the run's
/// [`WorkflowStats`] as the observer, and executes it. Every operation of
/// every round — DBG construction, labeling, merging, bubble filtering, tip
/// removing — executes on one persistent worker pool
/// ([`AssemblyConfig::exec`], or a pool built here when unset): threads are
/// spawned once per run, not once per superstep/phase.
pub fn assemble(reads: &ReadSet, config: &AssemblyConfig) -> Assembly {
    let ctx = exec_ctx(config);
    let mut stats = WorkflowStats::default();
    let mut state = GraphState::new(reads);
    Pipeline::paper_workflow(config)
        .observe(&mut stats)
        .run(&mut state, &ctx);

    Assembly {
        contigs: state.output,
        stats,
    }
}

/// The execution context an assembly entry point runs on: the configured one
/// when supplied, or a private pool sized to `config.workers`. The config's
/// [`SpillPolicy`] is installed on the context either way, so a shared
/// context always reflects the policy of the assembly it is running.
fn exec_ctx(config: &AssemblyConfig) -> ExecCtx {
    let ctx = config
        .exec
        .clone()
        .unwrap_or_else(|| ExecCtx::new(config.workers));
    ctx.assert_matches(config.workers, "AssemblyConfig.workers");
    ctx.set_spill(config.spill);
    ctx
}

/// Reads FASTA or FASTQ input, auto-detecting the format from the first byte,
/// and surfaces malformed records as a recoverable [`PipelineError::Input`]
/// (carrying the 1-based line number of the offending record) instead of a
/// panic. Empty input yields an empty [`ReadSet`].
pub fn read_input<R: BufRead>(mut reader: R) -> Result<ReadSet, PipelineError> {
    let first = {
        let buf = reader.fill_buf().map_err(SeqError::from)?;
        buf.first().copied()
    };
    match first {
        None => Ok(ReadSet::new()),
        Some(b'>') => ReadSet::read_fasta(reader).map_err(PipelineError::Input),
        Some(b'@') => ReadSet::read_fastq(reader).map_err(PipelineError::Input),
        Some(c) => Err(PipelineError::Input(SeqError::Parse {
            line: 1,
            msg: format!(
                "unrecognized input format: expected '>' (FASTA) or '@' (FASTQ), found {:?}",
                c as char
            ),
        })),
    }
}

/// [`read_input`] over a file path; open errors become
/// [`PipelineError::Input`] too.
pub fn read_input_path(path: impl AsRef<Path>) -> Result<ReadSet, PipelineError> {
    let file = std::fs::File::open(path).map_err(SeqError::from)?;
    read_input(std::io::BufReader::new(file))
}

/// Fallible [`assemble`]: a stage panic (including worker panics surfaced at
/// the superstep barrier) is returned as a typed [`PipelineError`] instead of
/// unwinding, leaving the worker pool reusable.
pub fn try_assemble(reads: &ReadSet, config: &AssemblyConfig) -> Result<Assembly, PipelineError> {
    let ctx = exec_ctx(config);
    let mut stats = WorkflowStats::default();
    let mut state = GraphState::new(reads);
    Pipeline::paper_workflow(config)
        .observe(&mut stats)
        .try_run(&mut state, &ctx)?;
    Ok(Assembly {
        contigs: state.output,
        stats,
    })
}

/// [`try_assemble`] under a caller-held [`JobControl`]: the handle is
/// installed on the run's execution context, every Pregel superstep boundary,
/// MapReduce/convert shuffle barrier and pipeline stage boundary polls it
/// cooperatively, and a trip — [`cancel`](JobControl::cancel), an expired
/// deadline, or a memory-budget overrun — unwinds as
/// [`PipelineError::Cancelled`] with the worker pool left reusable. Keep a
/// clone of the handle (it is `Arc`-shared) to cancel from another thread.
///
/// The handle is removed from the context again on every exit path, so a
/// shared [`AssemblyConfig::exec`] context is not left carrying a tripped
/// latch into the next run.
pub fn assemble_with_control(
    reads: &ReadSet,
    config: &AssemblyConfig,
    control: &JobControl,
) -> Result<Assembly, PipelineError> {
    let ctx = exec_ctx(config);
    ctx.set_control(control.clone());
    let mut stats = WorkflowStats::default();
    let mut state = GraphState::new(reads);
    let result = Pipeline::paper_workflow(config)
        .observe(&mut stats)
        .try_run(&mut state, &ctx);
    ctx.clear_control();
    result?;
    Ok(Assembly {
        contigs: state.output,
        stats,
    })
}

/// [`assemble`] with stage-boundary checkpointing and bounded retries: the
/// paper workflow snapshots its [`GraphState`] under `dir` per `policy`, and
/// a failed stage is retried from the latest snapshot (or from scratch when
/// none was saved yet), up to `max_attempts` total attempts.
pub fn assemble_with_checkpoints(
    reads: &ReadSet,
    config: &AssemblyConfig,
    dir: impl Into<PathBuf>,
    policy: CheckpointPolicy,
    max_attempts: usize,
) -> Result<Assembly, PipelineError> {
    let ctx = exec_ctx(config);
    let mut stats = WorkflowStats::default();
    let mut state = GraphState::new(reads);
    Pipeline::paper_workflow(config)
        .checkpoint_to(dir, policy)
        .observe(&mut stats)
        .try_run_with_retries(&mut state, &ctx, max_attempts)?;
    Ok(Assembly {
        contigs: state.output,
        stats,
    })
}

/// Resumes an interrupted [`assemble_with_checkpoints`] run from the latest
/// snapshot under `dir`, replaying only the remaining stages (and continuing
/// to snapshot per `policy`). The snapshot must have been written by the same
/// workflow: same configuration fingerprint, worker count and read set.
///
/// The returned [`Assembly::stats`] cover the replayed stages only — an
/// assembly resumed at the final stage reports timings for that stage alone.
pub fn resume_assembly(
    reads: &ReadSet,
    config: &AssemblyConfig,
    dir: impl Into<PathBuf>,
    policy: CheckpointPolicy,
) -> Result<Assembly, PipelineError> {
    let ctx = exec_ctx(config);
    let dir = dir.into();
    let mut stats = WorkflowStats::default();
    let (state, _reports) = Pipeline::paper_workflow(config)
        .checkpoint_to(dir.clone(), policy)
        .observe(&mut stats)
        .resume(&dir, reads, &ctx)?;
    Ok(Assembly {
        contigs: state.output,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    fn small_config(k: usize) -> AssemblyConfig {
        AssemblyConfig {
            k,
            min_kmer_coverage: 0,
            tip_length_threshold: 80,
            bubble_edit_distance: 5,
            workers: 3,
            labeling: LabelingAlgorithm::ListRanking,
            error_correction_rounds: 1,
            min_contig_length: 0,
            spill: SpillPolicy::Off,
            exec: None,
        }
    }

    fn simulate(
        length: usize,
        coverage: f64,
        error: f64,
        seed: u64,
    ) -> (ppa_readsim::ReferenceGenome, ReadSet) {
        let reference = GenomeConfig {
            length,
            repeat_families: 0,
            seed,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig {
            read_length: 100.min(length / 2),
            coverage,
            substitution_rate: error,
            indel_rate: 0.0,
            n_rate: 0.0,
            both_strands: true,
            seed: seed + 1,
        }
        .simulate(&reference);
        (reference, reads)
    }

    #[test]
    fn error_free_genome_is_reconstructed_as_one_contig() {
        let (reference, reads) = simulate(3_000, 25.0, 0.0, 11);
        let assembly = assemble(&reads, &small_config(21));
        assert!(!assembly.contigs.is_empty());
        // The largest contig must cover almost the whole reference (ends may be
        // truncated where read coverage runs out).
        let largest = assembly.largest_contig();
        assert!(
            largest >= reference.len() - 200,
            "largest contig {largest} vs reference {}",
            reference.len()
        );
        // And its sequence must be a substring match of the reference in one
        // orientation or the other.
        let ref_seq = reference.sequence.to_ascii();
        let contig = assembly.contigs[0].sequence.to_ascii();
        let contig_rc = assembly.contigs[0].sequence.reverse_complement().to_ascii();
        assert!(
            ref_seq.contains(&contig) || ref_seq.contains(&contig_rc),
            "largest contig is not a substring of the reference"
        );
        assert_eq!(assembly.n50(), largest);
        assert!(assembly.stats.total_elapsed.as_nanos() > 0);
        assert_eq!(
            assembly.stats.node_counts.kmer_vertices,
            assembly.stats.construct.vertices as usize
        );
    }

    #[test]
    fn noisy_reads_still_assemble_and_errors_are_corrected() {
        let (reference, reads) = simulate(4_000, 30.0, 0.005, 23);
        let mut config = small_config(21);
        config.min_kmer_coverage = 1; // θ filter kicks in for error k-mers
        let assembly = assemble(&reads, &config);
        assert!(!assembly.contigs.is_empty());
        let total = assembly.total_length();
        assert!(
            total >= reference.len() / 2,
            "assembled {total} bases of a {} bp reference",
            reference.len()
        );
        // Error correction should have removed at least one bubble or tip, or
        // the θ filter already cleaned everything (also acceptable).
        let stats = &assembly.stats;
        assert_eq!(stats.corrections.len(), 1);
    }

    #[test]
    fn second_round_improves_or_preserves_n50() {
        // With repeats, round 2 should merge across corrected regions; at the
        // very least it must not make the assembly worse.
        let reference = GenomeConfig {
            length: 6_000,
            repeat_families: 4,
            repeat_copies: 2,
            repeat_length: 120,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig {
            read_length: 100,
            coverage: 25.0,
            substitution_rate: 0.004,
            indel_rate: 0.0,
            n_rate: 0.0,
            both_strands: true,
            seed: 6,
        }
        .simulate(&reference);
        let assembly = assemble(
            &reads,
            &AssemblyConfig {
                min_kmer_coverage: 1,
                ..small_config(21)
            },
        );
        assert!(
            assembly.stats.n50_final >= assembly.stats.n50_after_round1,
            "round 2 must not reduce N50 ({} -> {})",
            assembly.stats.n50_after_round1,
            assembly.stats.n50_final
        );
        // Vertex counts must shrink across the pipeline (the paper's
        // 46.97 M → 1.00 M → 68,264 observation, at our scale).
        let counts = &assembly.stats.node_counts;
        assert!(counts.after_first_merge < counts.kmer_vertices);
        assert!(counts.after_final_merge <= counts.after_first_merge);
    }

    #[test]
    fn both_labeling_algorithms_produce_equivalent_assemblies() {
        let (_, reads) = simulate(2_500, 20.0, 0.002, 31);
        let lr = assemble(
            &reads,
            &AssemblyConfig {
                labeling: LabelingAlgorithm::ListRanking,
                min_kmer_coverage: 1,
                ..small_config(21)
            },
        );
        let sv = assemble(
            &reads,
            &AssemblyConfig {
                labeling: LabelingAlgorithm::SimplifiedSV,
                min_kmer_coverage: 1,
                ..small_config(21)
            },
        );
        // Same contig length multiset (IDs and order may differ).
        let mut a: Vec<usize> = lr.contigs.iter().map(Contig::len).collect();
        let mut b: Vec<usize> = sv.contigs.iter().map(Contig::len).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(lr.n50(), sv.n50());
    }

    #[test]
    fn zero_correction_rounds_stop_after_first_merge() {
        let (_, reads) = simulate(2_000, 20.0, 0.0, 41);
        let assembly = assemble(
            &reads,
            &AssemblyConfig {
                error_correction_rounds: 0,
                ..small_config(21)
            },
        );
        assert!(!assembly.contigs.is_empty());
        assert!(assembly.stats.label_round2.is_empty());
        assert!(assembly.stats.corrections.is_empty());
        assert_eq!(assembly.stats.n50_after_round1, assembly.stats.n50_final);
    }

    #[test]
    fn min_contig_length_filters_output() {
        let (_, reads) = simulate(2_000, 15.0, 0.005, 53);
        let all = assemble(
            &reads,
            &AssemblyConfig {
                min_kmer_coverage: 0,
                min_contig_length: 0,
                ..small_config(21)
            },
        );
        let filtered = assemble(
            &reads,
            &AssemblyConfig {
                min_kmer_coverage: 0,
                min_contig_length: 500,
                ..small_config(21)
            },
        );
        assert!(filtered.contigs.len() <= all.contigs.len());
        assert!(filtered.contigs.iter().all(|c| c.len() >= 500));
    }

    #[test]
    fn empty_reads_produce_empty_assembly() {
        let assembly = assemble(&ReadSet::new(), &small_config(21));
        assert!(assembly.contigs.is_empty());
        assert_eq!(assembly.total_length(), 0);
        assert_eq!(assembly.n50(), 0);
        assert_eq!(assembly.largest_contig(), 0);
    }

    #[test]
    fn fasta_output_roundtrips() {
        let (_, reads) = simulate(2_000, 20.0, 0.0, 61);
        let assembly = assemble(&reads, &small_config(21));
        let fasta = assembly.to_fasta();
        assert_eq!(fasta.len(), assembly.contigs.len());
        let mut buf = Vec::new();
        fasta.write_fasta(&mut buf).unwrap();
        let reparsed = ReadSet::read_fasta(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(reparsed.len(), assembly.contigs.len());
        assert_eq!(
            reparsed.records[0].seq.len(),
            assembly.contigs[0].len(),
            "sequences survive the FASTA round-trip"
        );
    }

    #[test]
    fn read_input_detects_format_and_surfaces_parse_errors() {
        let fasta = read_input(std::io::Cursor::new(b">r1\nACGT\n".to_vec())).unwrap();
        assert_eq!(fasta.len(), 1);
        let fastq = read_input(std::io::Cursor::new(b"@r1\nACGT\n+\nIIII\n".to_vec())).unwrap();
        assert_eq!(fastq.len(), 1);
        assert_eq!(
            read_input(std::io::Cursor::new(Vec::new())).unwrap().len(),
            0
        );

        // A malformed record comes back as a typed, recoverable input error
        // carrying the offending line, not a panic.
        let err = read_input(std::io::Cursor::new(b"@r1\nACGT\n+\nII\n".to_vec())).unwrap_err();
        match err {
            crate::pipeline::PipelineError::Input(ppa_seq::SeqError::Parse { line, .. }) => {
                assert_eq!(line, 4)
            }
            other => panic!("expected a parse error with line context, got {other:?}"),
        }
        let err = read_input(std::io::Cursor::new(b"#junk\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("unrecognized input format"));
    }

    #[test]
    fn try_assemble_matches_assemble() {
        let (_, reads) = simulate(2_000, 20.0, 0.0, 67);
        let config = small_config(21);
        let baseline = assemble(&reads, &config);
        let assembly = try_assemble(&reads, &config).expect("fault-free run succeeds");
        assert_eq!(assembly.contigs, baseline.contigs);
    }

    #[test]
    fn checkpointed_assembly_survives_an_injected_crash() {
        let (_, reads) = simulate(2_000, 20.0, 0.0, 71);
        let mut config = small_config(21);
        let ctx = ExecCtx::new(config.workers);
        config.exec = Some(ctx.clone());
        let baseline = assemble(&reads, &config);

        let dir = std::env::temp_dir().join(format!("ppa-workflow-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let armed = ctx.inject_faults(ppa_pregel::FaultPlan::single(
            ppa_pregel::Fault::StageEntry { stage: 6 },
        ));
        let assembly =
            assemble_with_checkpoints(&reads, &config, &dir, CheckpointPolicy::EveryStage, 2)
                .expect("the retry recovers the assembly");
        ctx.clear_faults();
        assert!(armed.all_fired());
        assert_eq!(assembly.contigs, baseline.contigs);

        // The completed run leaves a resumable snapshot behind.
        let resumed = resume_assembly(&reads, &config, &dir, CheckpointPolicy::Off)
            .expect("resume from the final snapshot");
        assert_eq!(resumed.contigs, baseline.contigs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn assemble_with_control_matches_plain_and_honours_a_cancel() {
        let (_, reads) = simulate(2_000, 20.0, 0.0, 77);
        let mut config = small_config(21);
        let ctx = ExecCtx::new(config.workers);
        config.exec = Some(ctx.clone());
        let baseline = assemble(&reads, &config);

        // A live handle that never trips: identical output, no cancel marker.
        let control = ppa_pregel::JobControl::new();
        let assembly = assemble_with_control(&reads, &config, &control).expect("no trip");
        assert_eq!(assembly.contigs, baseline.contigs);
        assert!(assembly.stats.cancelled.is_none());

        // A pre-cancelled handle stops at the very first stage boundary — and
        // the exit path removed it from the shared context, so the next plain
        // run on the same pool is unaffected.
        let control = ppa_pregel::JobControl::new();
        control.cancel();
        let err = assemble_with_control(&reads, &config, &control).unwrap_err();
        match &err {
            crate::pipeline::PipelineError::Cancelled {
                stage, superstep, ..
            } => {
                assert_eq!(stage, "construct");
                assert_eq!(*superstep, None);
            }
            other => panic!("expected a Cancelled error, got {other:?}"),
        }
        assert!(!err.is_transient());
        let again = assemble(&reads, &config);
        assert_eq!(again.contigs, baseline.contigs);
    }

    #[test]
    fn spilled_assembly_is_byte_identical_to_resident() {
        let (_, reads) = simulate(4_000, 25.0, 0.0, 83);
        let config = small_config(21);
        let baseline = assemble(&reads, &config);
        assert!(!baseline.contigs.is_empty());

        // A generous cap never trips; a tiny cap forces both the MapReduce
        // phases of construction and the labeling job out of core. Either
        // way the contigs must be byte-identical to the resident run.
        for cap in [1u64 << 30, 24 * 1024] {
            let spilled = assemble(
                &reads,
                &AssemblyConfig {
                    spill: ppa_pregel::SpillPolicy::At(cap),
                    ..small_config(21)
                },
            );
            assert_eq!(
                spilled.contigs, baseline.contigs,
                "cap {cap}: spilled assembly must match the resident one"
            );
            let construct_spill = spilled.stats.construct.phase1.spilled_bytes
                + spilled.stats.construct.phase2.spilled_bytes;
            let label_spill = spilled.stats.label_round1.spilled_bytes;
            if cap == 1 << 30 {
                assert_eq!(construct_spill + label_spill, 0, "large cap must not trip");
            } else {
                assert!(
                    construct_spill > 0 || label_spill > 0,
                    "tiny cap must actually spill somewhere"
                );
            }
        }
    }

    #[test]
    fn contig_accessors() {
        let c = Contig {
            id: crate::ids::contig_id(0, 1),
            sequence: DnaString::from_ascii("ACGTACGT").unwrap(),
            coverage: 9,
        };
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }
}
