//! The unified assembly-graph node: k-mer vertices and contig vertices.
//!
//! The paper uses two vertex kinds (Section IV-A): **k-mer vertices**, whose
//! sequence is implicit in their ID and whose adjacency starts out in the
//! packed bitmap format of [`crate::adj`], and **contig vertices**, which own a
//! variable-length packed sequence, a coverage value and (at most) two
//! neighbours (Figure 9). After the first contig-merging round the graph is a
//! mixture of both kinds, and the later operations — bubble filtering, tip
//! removing, the second labeling/merging round — treat them uniformly.
//! [`AsmNode`] is that uniform representation; [`KmerVertex`] is the compact
//! construction-time form that gets converted into it (the in-memory job
//! concatenation of the paper).

use crate::adj::PackedAdj;
use crate::ids;
use crate::polarity::{side_of, Direction, Polarity, Side};
use ppa_seq::{DnaString, Kmer, Orientation};
use serde::{Deserialize, Serialize};

/// The sequence payload of a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSeq {
    /// A k-mer vertex: the sequence is the canonical k-mer.
    Kmer(Kmer),
    /// A contig vertex: an arbitrary-length packed sequence (Figure 9).
    Contig(DnaString),
}

impl NodeSeq {
    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        match self {
            NodeSeq::Kmer(k) => k.k(),
            NodeSeq::Contig(s) => s.len(),
        }
    }

    /// Whether the sequence is empty (only possible for a degenerate contig).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the sequence as a [`DnaString`].
    pub fn to_dna(&self) -> DnaString {
        match self {
            NodeSeq::Kmer(k) => k.to_dna_string(),
            NodeSeq::Contig(s) => s.clone(),
        }
    }

    /// The sequence in the requested orientation.
    pub fn oriented(&self, orientation: Orientation) -> DnaString {
        let s = self.to_dna();
        match orientation {
            Orientation::Forward => s,
            Orientation::ReverseComplement => s.reverse_complement(),
        }
    }
}

/// One incident edge of a node, stored from the owning node's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// ID of the neighbour node ([`NULL_ID`](crate::ids::NULL_ID) marks a dead
    /// end, used by contig vertices).
    pub neighbor: u64,
    /// Whether the owning node is the source (`Out`) or target (`In`) of the
    /// stored edge direction.
    pub direction: Direction,
    /// Edge polarity ⟨source:target⟩ in the stored direction.
    pub polarity: Polarity,
    /// Edge coverage: the number of reads contributing the underlying
    /// (k+1)-mer.
    pub coverage: u32,
}

impl Edge {
    /// Which side of the owning node's canonical sequence the edge attaches to.
    #[inline]
    pub fn side(&self) -> Side {
        side_of(self.direction, self.polarity)
    }

    /// The owning node's polarity label on this edge.
    #[inline]
    pub fn own_label(&self) -> Orientation {
        crate::polarity::own_label(self.direction, self.polarity)
    }

    /// The neighbour's polarity label on this edge.
    #[inline]
    pub fn neighbor_label(&self) -> Orientation {
        crate::polarity::neighbor_label(self.direction, self.polarity)
    }

    /// Whether the edge leads to the NULL dead-end marker.
    #[inline]
    pub fn is_null(&self) -> bool {
        ids::is_null(self.neighbor)
    }
}

/// Vertex classification (Section IV-A "Vertex Types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexType {
    /// No (real) neighbour at all. Only reachable through deletions or for an
    /// isolated contig whose both ends are dead.
    Isolated,
    /// Type ⟨1⟩: exactly one neighbour — a dead end, hence a tip candidate.
    One,
    /// Type ⟨1-1⟩: two neighbours, one on each side — an unambiguous vertex
    /// that lies on a simple path.
    OneOne,
    /// Type ⟨m-n⟩: any other configuration — an ambiguous (branching) vertex.
    Branch,
}

impl VertexType {
    /// Whether the vertex may be merged into a contig.
    #[inline]
    pub fn is_unambiguous(&self) -> bool {
        matches!(
            self,
            VertexType::One | VertexType::OneOne | VertexType::Isolated
        )
    }
}

/// A node of the assembly graph: either a k-mer vertex or a contig vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsmNode {
    /// Vertex ID (k-mer encoding or contig `worker ‖ ordinal`, Figure 7).
    pub id: u64,
    /// The node's sequence.
    pub seq: NodeSeq,
    /// Node coverage: for contigs, the minimum edge coverage merged into the
    /// contig (Figure 9); for k-mer vertices, the maximum incident edge
    /// coverage (a cheap proxy for read support).
    pub coverage: u32,
    /// Incident edges.
    pub edges: Vec<Edge>,
}

impl AsmNode {
    /// Creates a k-mer node with no edges yet.
    pub fn new_kmer(kmer: Kmer) -> AsmNode {
        AsmNode {
            id: ids::kmer_id(&kmer),
            seq: NodeSeq::Kmer(kmer),
            coverage: 0,
            edges: Vec::new(),
        }
    }

    /// Creates a contig node.
    pub fn new_contig(id: u64, seq: DnaString, coverage: u32) -> AsmNode {
        debug_assert!(ids::is_contig_id(id));
        AsmNode {
            id,
            seq: NodeSeq::Contig(seq),
            coverage,
            edges: Vec::new(),
        }
    }

    /// Whether this node is a contig vertex.
    pub fn is_contig(&self) -> bool {
        matches!(self.seq, NodeSeq::Contig(_))
    }

    /// Whether this node is a k-mer vertex.
    pub fn is_kmer(&self) -> bool {
        matches!(self.seq, NodeSeq::Kmer(_))
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the node carries an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Edges that lead to a real neighbour (excluding NULL dead-end markers).
    pub fn real_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(|e| !e.is_null())
    }

    /// Real edges attached on the given side.
    pub fn edges_on(&self, side: Side) -> impl Iterator<Item = &Edge> {
        self.real_edges().filter(move |e| e.side() == side)
    }

    /// The single real edge on a side, if there is exactly one.
    pub fn sole_edge_on(&self, side: Side) -> Option<&Edge> {
        let mut it = self.edges_on(side);
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Vertex type per Section IV-A: ⟨1⟩, ⟨1-1⟩ or ⟨m-n⟩ (plus `Isolated`).
    pub fn vertex_type(&self) -> VertexType {
        let mut left = 0usize;
        let mut right = 0usize;
        for e in self.real_edges() {
            match e.side() {
                Side::Left => left += 1,
                Side::Right => right += 1,
            }
        }
        match (left, right) {
            (0, 0) => VertexType::Isolated,
            (1, 0) | (0, 1) => VertexType::One,
            (1, 1) => VertexType::OneOne,
            _ => VertexType::Branch,
        }
    }

    /// Adds an edge.
    pub fn push_edge(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// Removes every edge to the given neighbour, returning how many were
    /// removed.
    pub fn remove_edges_to(&mut self, neighbor: u64) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| e.neighbor != neighbor);
        before - self.edges.len()
    }

    /// IDs of all real neighbours (possibly with duplicates for parallel edges).
    pub fn neighbor_ids(&self) -> Vec<u64> {
        self.real_edges().map(|e| e.neighbor).collect()
    }
}

/// The compact construction-time representation of a k-mer vertex: canonical
/// k-mer plus the packed 32-bit adjacency of Figure 8(a).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerVertex {
    /// The canonical k-mer.
    pub kmer: Kmer,
    /// Packed adjacency bitmap and per-edge coverages.
    pub adj: PackedAdj,
}

impl KmerVertex {
    /// Creates a vertex with an empty adjacency.
    pub fn new(kmer: Kmer) -> KmerVertex {
        KmerVertex {
            kmer,
            adj: PackedAdj::new(),
        }
    }

    /// The vertex ID (the packed canonical k-mer, Figure 7a).
    pub fn id(&self) -> u64 {
        ids::kmer_id(&self.kmer)
    }

    /// Expands the packed adjacency into the unified [`AsmNode`] form — the
    /// `convert(.)` step between the DBG-construction job and the
    /// contig-labeling job.
    pub fn to_asm_node(&self) -> AsmNode {
        let mut node = AsmNode::new_kmer(self.kmer);
        let mut max_cov = 0u32;
        for (slot, coverage) in self.adj.iter() {
            let neighbor = slot.neighbor_of(&self.kmer);
            node.push_edge(Edge {
                neighbor: ids::kmer_id(&neighbor),
                direction: slot.direction,
                polarity: slot.polarity,
                coverage,
            });
            max_cov = max_cov.max(coverage);
        }
        node.coverage = max_cov;
        node
    }

    /// Approximate memory footprint in bytes (ID + bitmap + counters), used to
    /// quantify the benefit of the packed format over the expanded one.
    pub fn footprint_bytes(&self) -> usize {
        8 + self.adj.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adj::EdgeSlot;
    use crate::ids::NULL_ID;
    use ppa_seq::Base;

    fn km(s: &str) -> Kmer {
        Kmer::from_str_exact(s).unwrap()
    }

    fn edge(neighbor: u64, direction: Direction, polarity: Polarity, coverage: u32) -> Edge {
        Edge {
            neighbor,
            direction,
            polarity,
            coverage,
        }
    }

    #[test]
    fn node_seq_accessors() {
        let k = NodeSeq::Kmer(km("ACGT"));
        assert_eq!(k.len(), 4);
        assert_eq!(k.to_dna().to_ascii(), "ACGT");
        assert_eq!(
            k.oriented(Orientation::ReverseComplement).to_ascii(),
            "ACGT"
        ); // palindrome
        let c = NodeSeq::Contig(DnaString::from_ascii("TGCCGTAC").unwrap());
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
        assert_eq!(c.oriented(Orientation::Forward).to_ascii(), "TGCCGTAC");
        assert_eq!(
            c.oriented(Orientation::ReverseComplement).to_ascii(),
            "GTACGGCA"
        );
    }

    #[test]
    fn edge_side_and_labels() {
        let e = edge(3, Direction::Out, Polarity::LH, 5);
        assert_eq!(e.side(), Side::Right);
        assert_eq!(e.own_label(), Orientation::Forward);
        assert_eq!(e.neighbor_label(), Orientation::ReverseComplement);
        assert!(!e.is_null());
        assert!(edge(NULL_ID, Direction::Out, Polarity::LL, 0).is_null());
    }

    #[test]
    fn vertex_types_cover_all_cases() {
        let mut node = AsmNode::new_kmer(km("ACGTA"));
        assert_eq!(node.vertex_type(), VertexType::Isolated);
        assert!(node.vertex_type().is_unambiguous());

        // One edge on the right → ⟨1⟩.
        node.push_edge(edge(10, Direction::Out, Polarity::LL, 3));
        assert_eq!(node.vertex_type(), VertexType::One);

        // Add one on the left → ⟨1-1⟩.
        node.push_edge(edge(11, Direction::In, Polarity::LL, 2));
        assert_eq!(node.vertex_type(), VertexType::OneOne);
        assert!(node.vertex_type().is_unambiguous());

        // A second edge on the right → ⟨m-n⟩.
        node.push_edge(edge(12, Direction::Out, Polarity::LH, 1));
        assert_eq!(node.vertex_type(), VertexType::Branch);
        assert!(!node.vertex_type().is_unambiguous());
    }

    #[test]
    fn two_edges_on_same_side_is_branch() {
        let mut node = AsmNode::new_kmer(km("ACGTA"));
        node.push_edge(edge(10, Direction::Out, Polarity::LL, 3));
        node.push_edge(edge(12, Direction::Out, Polarity::LH, 1));
        assert_eq!(node.vertex_type(), VertexType::Branch);
    }

    #[test]
    fn null_edges_do_not_count_as_neighbors() {
        let mut contig = AsmNode::new_contig(
            ids::contig_id(0, 1),
            DnaString::from_ascii("TGCCGTAC").unwrap(),
            98,
        );
        contig.push_edge(edge(NULL_ID, Direction::In, Polarity::LL, 0));
        contig.push_edge(edge(77, Direction::Out, Polarity::LL, 103));
        // One real neighbour → type ⟨1⟩ (a dangling contig = tip candidate).
        assert_eq!(contig.vertex_type(), VertexType::One);
        assert_eq!(contig.neighbor_ids(), vec![77]);
        assert!(contig.is_contig() && !contig.is_kmer());
    }

    #[test]
    fn edges_on_side_and_sole_edge() {
        let mut node = AsmNode::new_kmer(km("ACGTA"));
        node.push_edge(edge(10, Direction::Out, Polarity::LL, 3)); // Right
        node.push_edge(edge(11, Direction::In, Polarity::LL, 2)); // Left
        node.push_edge(edge(12, Direction::In, Polarity::LH, 2)); // Right
        assert_eq!(node.edges_on(Side::Right).count(), 2);
        assert_eq!(node.edges_on(Side::Left).count(), 1);
        assert_eq!(node.sole_edge_on(Side::Left).unwrap().neighbor, 11);
        assert!(node.sole_edge_on(Side::Right).is_none());
    }

    #[test]
    fn remove_edges_to_neighbor() {
        let mut node = AsmNode::new_kmer(km("ACGTA"));
        node.push_edge(edge(10, Direction::Out, Polarity::LL, 3));
        node.push_edge(edge(10, Direction::In, Polarity::HH, 1));
        node.push_edge(edge(11, Direction::In, Polarity::LL, 2));
        assert_eq!(node.remove_edges_to(10), 2);
        assert_eq!(node.edges.len(), 1);
        assert_eq!(node.remove_edges_to(99), 0);
    }

    #[test]
    fn kmer_vertex_expands_to_asm_node() {
        // Vertex "AC" with two incident edges taken from the chain
        // AT→TT→TG→... of Figure 4 is fiddly to set up by hand; instead use
        // the Figure 8(b) vertex "ACGG" with its two items.
        let mut v = KmerVertex::new(km("ACGG"));
        v.adj.add(
            EdgeSlot {
                polarity: Polarity::HH,
                direction: Direction::In,
                base: Base::G,
            },
            7,
        );
        v.adj.add(
            EdgeSlot {
                polarity: Polarity::HL,
                direction: Direction::Out,
                base: Base::A,
            },
            9,
        );
        let node = v.to_asm_node();
        assert_eq!(node.id, v.id());
        assert_eq!(node.edges.len(), 2);
        assert_eq!(node.coverage, 9);
        let neighbors: Vec<String> = node
            .edges
            .iter()
            .map(|e| ids::kmer_from_id(e.neighbor, 4).unwrap().to_string())
            .collect();
        assert!(neighbors.contains(&"CGGC".to_string()));
        assert!(neighbors.contains(&"CGTA".to_string()));
        // One neighbour on each side → unambiguous.
        assert_eq!(node.vertex_type(), VertexType::OneOne);
        assert!(v.footprint_bytes() < 8 + 4 + 4 * 32);
    }
}
