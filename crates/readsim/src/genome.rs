//! Reference genome generation.
//!
//! A purely random DNA sequence produces a de Bruijn graph that is almost
//! entirely one long unambiguous path (for k = 31, random 31-mers essentially
//! never collide), which would make the assembly problem trivially easy and
//! the error-correction operations pointless. Real genomes contain repeated
//! segments; a k-mer inside a repeat appears at several positions and becomes
//! an *ambiguous* vertex (Section III of the paper). [`GenomeConfig`]
//! therefore plants a configurable number of repeat copies into the generated
//! sequence so that the simulated DBG has the branching structure the
//! assembler is designed to handle.

use ppa_seq::{Base, DnaString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the reference generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenomeConfig {
    /// Total length of the reference in base pairs.
    pub length: usize,
    /// Target GC fraction in `[0, 1]` (human chromosomes are ≈ 0.41).
    pub gc_content: f64,
    /// Number of repeat *families* to plant.
    pub repeat_families: usize,
    /// Number of copies of each repeat family (including the original).
    pub repeat_copies: usize,
    /// Length of each repeat, in base pairs. Must be ≥ the assembly k for the
    /// repeat to actually create ambiguous vertices.
    pub repeat_length: usize,
    /// RNG seed; the same seed always produces the same reference.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            length: 100_000,
            gc_content: 0.41,
            repeat_families: 8,
            repeat_copies: 3,
            repeat_length: 120,
            seed: 42,
        }
    }
}

impl GenomeConfig {
    /// Convenience constructor for a genome of `length` bp with default
    /// repeat structure.
    pub fn with_length(length: usize) -> GenomeConfig {
        GenomeConfig {
            length,
            ..Default::default()
        }
    }

    /// Generates the reference genome.
    pub fn generate(&self) -> ReferenceGenome {
        assert!(self.length > 0, "reference length must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let gc = self.gc_content.clamp(0.0, 1.0);
        let mut bases: Vec<Base> = (0..self.length)
            .map(|_| {
                let is_gc = rng.gen_bool(gc);
                match (is_gc, rng.gen_bool(0.5)) {
                    (true, true) => Base::G,
                    (true, false) => Base::C,
                    (false, true) => Base::A,
                    (false, false) => Base::T,
                }
            })
            .collect();

        // Plant repeats: pick a source window and copy it to `repeat_copies - 1`
        // other positions (possibly reverse-complemented, as real repeats occur
        // on either strand).
        let mut repeat_positions = Vec::new();
        if self.repeat_length > 0 && self.repeat_length < self.length {
            for _ in 0..self.repeat_families {
                let src = rng.gen_range(0..=self.length - self.repeat_length);
                let template: Vec<Base> = bases[src..src + self.repeat_length].to_vec();
                repeat_positions.push(src);
                for _ in 1..self.repeat_copies.max(1) {
                    let dst = rng.gen_range(0..=self.length - self.repeat_length);
                    let reverse = rng.gen_bool(0.5);
                    let copy: Vec<Base> = if reverse {
                        ppa_seq::base::reverse_complement(&template)
                    } else {
                        template.clone()
                    };
                    bases[dst..dst + self.repeat_length].copy_from_slice(&copy);
                    repeat_positions.push(dst);
                }
            }
        }

        ReferenceGenome {
            sequence: DnaString::from_bases(&bases),
            config: self.clone(),
            repeat_positions,
        }
    }
}

/// A generated reference sequence plus provenance information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceGenome {
    /// The reference sequence.
    pub sequence: DnaString,
    /// The configuration that produced it.
    pub config: GenomeConfig,
    /// Start positions of the planted repeat copies (useful in tests).
    pub repeat_positions: Vec<usize>,
}

impl ReferenceGenome {
    /// Length of the reference in base pairs.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the reference is empty (never true for generated genomes).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// GC fraction of the generated sequence.
    pub fn gc_fraction(&self) -> f64 {
        self.sequence.gc_fraction()
    }

    /// Number of distinct canonical k-mers versus total k-mer positions; a
    /// ratio below 1.0 indicates repeated k-mers (ambiguity in the DBG).
    pub fn kmer_uniqueness(&self, k: usize) -> f64 {
        use std::collections::HashSet;
        if self.sequence.len() < k {
            return 1.0;
        }
        let mut set = HashSet::new();
        let mut total = 0usize;
        for kmer in self.sequence.kmers(k) {
            set.insert(kmer.canonical().kmer.packed());
            total += 1;
        }
        set.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GenomeConfig {
            length: 5_000,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.sequence, b.sequence);
        let c = GenomeConfig { seed: 43, ..cfg }.generate();
        assert_ne!(a.sequence, c.sequence);
    }

    #[test]
    fn length_and_gc_are_respected() {
        let cfg = GenomeConfig {
            length: 20_000,
            gc_content: 0.41,
            repeat_families: 0,
            ..Default::default()
        };
        let g = cfg.generate();
        assert_eq!(g.len(), 20_000);
        assert!(
            (g.gc_fraction() - 0.41).abs() < 0.03,
            "gc = {}",
            g.gc_fraction()
        );
        let at_rich = GenomeConfig {
            gc_content: 0.1,
            ..cfg
        }
        .generate();
        assert!(at_rich.gc_fraction() < 0.15);
    }

    #[test]
    fn repeats_reduce_kmer_uniqueness() {
        let no_repeats = GenomeConfig {
            length: 30_000,
            repeat_families: 0,
            seed: 7,
            ..Default::default()
        }
        .generate();
        let with_repeats = GenomeConfig {
            length: 30_000,
            repeat_families: 20,
            repeat_copies: 4,
            repeat_length: 200,
            seed: 7,
            ..Default::default()
        }
        .generate();
        let u_no = no_repeats.kmer_uniqueness(31);
        let u_yes = with_repeats.kmer_uniqueness(31);
        assert!(
            u_no > 0.999,
            "random genome should be almost repeat-free: {u_no}"
        );
        assert!(
            u_yes < u_no,
            "planted repeats must introduce duplicate k-mers"
        );
        assert!(!with_repeats.repeat_positions.is_empty());
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        GenomeConfig {
            length: 0,
            ..Default::default()
        }
        .generate();
    }

    #[test]
    fn small_genome_with_oversized_repeat_is_safe() {
        // repeat_length >= length: planting is skipped rather than panicking.
        let g = GenomeConfig {
            length: 50,
            repeat_length: 100,
            ..Default::default()
        }
        .generate();
        assert_eq!(g.len(), 50);
        assert!(g.repeat_positions.is_empty());
    }
}
