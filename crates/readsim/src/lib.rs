//! Reference-genome and short-read simulation for the PPA-assembler workspace.
//!
//! The paper evaluates on four datasets (Table I): two read sets generated
//! with the ART simulator from NCBI reference chromosomes (HC-2, HC-X) and two
//! real GAGE read sets (HC-14, Bombus impatiens). Neither the multi-gigabyte
//! FASTQ files nor ART itself are available in this environment, so this crate
//! provides the closest synthetic equivalent:
//!
//! * [`genome`] generates reference sequences with a configurable GC content
//!   and *planted repeats* — the repeats are what create ambiguous (`⟨m-n⟩`)
//!   vertices in the de Bruijn graph, which is the structural property the
//!   assembly operations have to cope with;
//! * [`reads`] samples error-prone short reads from a reference the way ART
//!   models Illumina sequencing: uniform start positions, both strands,
//!   per-base substitution errors, optional indels and ambiguous (`N`) calls,
//!   at a chosen coverage depth;
//! * [`presets`] defines scaled-down analogues of the paper's four datasets so
//!   that every experiment harness can refer to them by name.
//!
//! All generation is deterministic for a given seed.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod genome;
pub mod presets;
pub mod reads;

pub use genome::{GenomeConfig, ReferenceGenome};
pub use presets::{all_presets, preset_by_name, DatasetPreset, SimulatedDataset};
pub use reads::ReadSimConfig;
