//! ART-like short-read simulation.
//!
//! Models the aspects of Illumina sequencing that matter to a de-Bruijn-graph
//! assembler (Section III of the paper):
//!
//! * reads are sampled from **both strands** — a read from strand 2 is the
//!   reverse complement of the corresponding strand-1 window, which is what
//!   forces the assembler to work with canonical k-mers and edge polarity;
//! * reads carry **substitution errors** that create the tips and bubbles the
//!   error-correction operations remove, plus optional indels and `N` calls;
//! * the number of reads is chosen to hit a target **coverage** (the paper's
//!   datasets are 10–40×).

use crate::genome::ReferenceGenome;
use ppa_seq::{Base, FastxRecord, ReadSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the read simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadSimConfig {
    /// Read length in base pairs (the paper's datasets use 100–155 bp).
    pub read_length: usize,
    /// Target coverage: expected number of reads covering each reference
    /// position.
    pub coverage: f64,
    /// Per-base substitution error probability.
    pub substitution_rate: f64,
    /// Per-base insertion/deletion probability (applied rarely; Illumina indel
    /// rates are far below substitution rates).
    pub indel_rate: f64,
    /// Per-base probability of an ambiguous `N` call.
    pub n_rate: f64,
    /// Whether to sample reads from both strands (true for real protocols).
    pub both_strands: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            read_length: 100,
            coverage: 30.0,
            substitution_rate: 0.002,
            indel_rate: 0.0,
            n_rate: 0.0005,
            both_strands: true,
            seed: 7,
        }
    }
}

impl ReadSimConfig {
    /// Convenience constructor for error-free reads (useful in tests where the
    /// assembly should reconstruct the reference exactly).
    pub fn error_free(read_length: usize, coverage: f64) -> ReadSimConfig {
        ReadSimConfig {
            read_length,
            coverage,
            substitution_rate: 0.0,
            indel_rate: 0.0,
            n_rate: 0.0,
            both_strands: true,
            seed: 7,
        }
    }

    /// Number of reads needed to reach the target coverage for a reference of
    /// `reference_len` base pairs.
    pub fn read_count(&self, reference_len: usize) -> usize {
        if self.read_length == 0 {
            return 0;
        }
        ((self.coverage * reference_len as f64) / self.read_length as f64).ceil() as usize
    }

    /// Simulates a read set from the reference.
    pub fn simulate(&self, reference: &ReferenceGenome) -> ReadSet {
        let ref_len = reference.len();
        assert!(
            self.read_length > 0 && self.read_length <= ref_len,
            "read length {} must be in 1..={}",
            self.read_length,
            ref_len
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_reads = self.read_count(ref_len);
        let mut records = Vec::with_capacity(n_reads);
        let ref_bases = reference.sequence.to_bases();

        for read_idx in 0..n_reads {
            let start = rng.gen_range(0..=ref_len - self.read_length);
            let window = &ref_bases[start..start + self.read_length];
            let reverse = self.both_strands && rng.gen_bool(0.5);
            let template: Vec<Base> = if reverse {
                ppa_seq::base::reverse_complement(window)
            } else {
                window.to_vec()
            };

            let mut seq: Vec<u8> = Vec::with_capacity(self.read_length + 4);
            let mut qual: Vec<u8> = Vec::with_capacity(self.read_length + 4);
            for &base in &template {
                // Indels first (rare): deletion skips the base, insertion adds a
                // random base before it.
                if self.indel_rate > 0.0 && rng.gen_bool(self.indel_rate) {
                    if rng.gen_bool(0.5) {
                        // deletion
                        continue;
                    } else {
                        // insertion
                        seq.push(random_base(&mut rng).to_ascii());
                        qual.push(b'#');
                    }
                }
                if self.n_rate > 0.0 && rng.gen_bool(self.n_rate) {
                    seq.push(b'N');
                    qual.push(b'!');
                    continue;
                }
                let emitted =
                    if self.substitution_rate > 0.0 && rng.gen_bool(self.substitution_rate) {
                        substitute(&mut rng, base)
                    } else {
                        base
                    };
                seq.push(emitted.to_ascii());
                qual.push(if emitted == base { b'I' } else { b'#' });
            }

            let strand = if reverse { '-' } else { '+' };
            records.push(FastxRecord::new_fastq(
                format!("sim_{read_idx}:{start}:{strand}"),
                seq,
                qual,
            ));
        }
        ReadSet::from_records(records)
    }
}

fn random_base(rng: &mut StdRng) -> Base {
    Base::from_code(rng.gen_range(0..4u8))
}

/// Picks a base different from `original`, uniformly.
fn substitute(rng: &mut StdRng, original: Base) -> Base {
    loop {
        let b = random_base(rng);
        if b != original {
            return b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeConfig;

    fn small_reference() -> ReferenceGenome {
        GenomeConfig {
            length: 5_000,
            repeat_families: 0,
            seed: 11,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn coverage_determines_read_count() {
        let reference = small_reference();
        let cfg = ReadSimConfig {
            read_length: 100,
            coverage: 20.0,
            ..Default::default()
        };
        let reads = cfg.simulate(&reference);
        assert_eq!(reads.len(), cfg.read_count(reference.len()));
        assert_eq!(reads.len(), 1000); // 20 × 5000 / 100
        assert!((reads.mean_read_length() - 100.0).abs() < 1.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let reference = small_reference();
        let cfg = ReadSimConfig::default();
        assert_eq!(cfg.simulate(&reference), cfg.simulate(&reference));
        let other = ReadSimConfig { seed: 99, ..cfg }.simulate(&reference);
        assert_ne!(other, ReadSimConfig::default().simulate(&reference));
    }

    #[test]
    fn error_free_reads_match_reference_windows() {
        let reference = small_reference();
        let cfg = ReadSimConfig {
            both_strands: false,
            ..ReadSimConfig::error_free(50, 5.0)
        };
        let reads = cfg.simulate(&reference);
        let ref_ascii = reference.sequence.to_ascii();
        for r in &reads.records {
            // Read id encodes the start position; the sequence must be an exact
            // substring of the reference.
            let start: usize = r.id.split(':').nth(1).unwrap().parse().unwrap();
            let window = &ref_ascii[start..start + 50];
            assert_eq!(std::str::from_utf8(&r.seq).unwrap(), window);
        }
    }

    #[test]
    fn both_strands_produces_reverse_complements() {
        let reference = small_reference();
        let cfg = ReadSimConfig::error_free(60, 10.0);
        let reads = cfg.simulate(&reference);
        let mut forward = 0usize;
        let mut reverse = 0usize;
        let ref_ascii = reference.sequence.to_ascii();
        for r in &reads.records {
            let parts: Vec<&str> = r.id.split(':').collect();
            let start: usize = parts[1].parse().unwrap();
            let window = &ref_ascii[start..start + 60];
            let seq = std::str::from_utf8(&r.seq).unwrap().to_string();
            if parts[2] == "+" {
                assert_eq!(seq, window);
                forward += 1;
            } else {
                let rc = ppa_seq::DnaString::from_ascii(window)
                    .unwrap()
                    .reverse_complement();
                assert_eq!(seq, rc.to_ascii());
                reverse += 1;
            }
        }
        assert!(forward > 0 && reverse > 0, "both strands should be sampled");
    }

    #[test]
    fn substitution_rate_produces_roughly_expected_errors() {
        let reference = small_reference();
        let cfg = ReadSimConfig {
            read_length: 100,
            coverage: 20.0,
            substitution_rate: 0.01,
            indel_rate: 0.0,
            n_rate: 0.0,
            both_strands: false,
            seed: 3,
        };
        let reads = cfg.simulate(&reference);
        let ref_ascii = reference.sequence.to_ascii();
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for r in &reads.records {
            let start: usize = r.id.split(':').nth(1).unwrap().parse().unwrap();
            let window = &ref_ascii.as_bytes()[start..start + 100];
            for (a, b) in r.seq.iter().zip(window) {
                total += 1;
                if a != b {
                    mismatches += 1;
                }
            }
        }
        let rate = mismatches as f64 / total as f64;
        assert!(rate > 0.005 && rate < 0.02, "observed error rate {rate}");
    }

    #[test]
    fn n_rate_and_indels_are_applied() {
        let reference = small_reference();
        let cfg = ReadSimConfig {
            n_rate: 0.01,
            indel_rate: 0.005,
            coverage: 10.0,
            ..Default::default()
        };
        let reads = cfg.simulate(&reference);
        let has_n = reads.records.iter().any(|r| r.seq.contains(&b'N'));
        let has_len_change = reads.records.iter().any(|r| r.len() != cfg.read_length);
        assert!(has_n, "expected at least one N call");
        assert!(
            has_len_change,
            "expected indels to change some read lengths"
        );
    }

    #[test]
    #[should_panic(expected = "read length")]
    fn read_longer_than_reference_rejected() {
        let reference = GenomeConfig {
            length: 40,
            repeat_families: 0,
            ..Default::default()
        }
        .generate();
        ReadSimConfig {
            read_length: 100,
            ..Default::default()
        }
        .simulate(&reference);
    }
}
