//! Scaled-down analogues of the paper's four evaluation datasets (Table I).
//!
//! | Paper dataset | Reads | Read length | Reference length |
//! |---|---|---|---|
//! | Homo sapiens chromosome 2 (HC-2)  | 4.81 M  | 100 bp | 48,170,570 bp |
//! | Homo sapiens chromosome X (HC-X)  | 9.26 M  | 100 bp | 96,301,240 bp |
//! | Human chromosome 14 (HC-14, GAGE) | 18.25 M | 101 bp | — |
//! | Bombus impatiens (BI, GAGE)       | 151.55 M| 155 bp | — |
//!
//! The presets below keep the *relative* ordering of data volumes, the read
//! lengths and the approximate coverage of the originals while shrinking the
//! reference to a laptop-friendly size. Every preset can be rescaled with
//! [`DatasetPreset::scaled`] for larger runs.

use crate::genome::{GenomeConfig, ReferenceGenome};
use crate::reads::ReadSimConfig;
use ppa_seq::ReadSet;
use serde::{Deserialize, Serialize};

/// A named dataset recipe: a reference-genome configuration plus a read
/// simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetPreset {
    /// Dataset name (`sim-hc2`, `sim-hcx`, `sim-hc14`, `sim-bi`).
    pub name: String,
    /// Name of the paper dataset this preset stands in for.
    pub paper_dataset: String,
    /// Reference generator parameters.
    pub genome: GenomeConfig,
    /// Read simulator parameters.
    pub reads: ReadSimConfig,
    /// Whether the corresponding paper experiment had a reference sequence
    /// available (drives which quality metrics are reported).
    pub has_reference: bool,
}

impl DatasetPreset {
    /// Returns a copy with the reference length multiplied by `factor`
    /// (rounded), keeping coverage and read length unchanged. `factor > 1`
    /// makes the experiment proportionally bigger.
    pub fn scaled(&self, factor: f64) -> DatasetPreset {
        let mut scaled = self.clone();
        scaled.genome.length = ((self.genome.length as f64) * factor).round().max(1.0) as usize;
        // Scale repeat families with the genome so ambiguity density stays similar.
        scaled.genome.repeat_families = ((self.genome.repeat_families as f64) * factor)
            .round()
            .max(1.0) as usize;
        scaled
    }

    /// Generates the reference and the reads.
    pub fn generate(&self) -> SimulatedDataset {
        let reference = self.genome.generate();
        let reads = self.reads.simulate(&reference);
        SimulatedDataset {
            preset: self.clone(),
            reference,
            reads,
        }
    }

    /// Expected number of reads for this preset.
    pub fn expected_reads(&self) -> usize {
        self.reads.read_count(self.genome.length)
    }
}

/// A fully generated dataset: preset, reference and reads.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    /// The recipe that produced this dataset.
    pub preset: DatasetPreset,
    /// The reference genome (always available for simulated data; whether the
    /// *paper* had one is recorded in `preset.has_reference`).
    pub reference: ReferenceGenome,
    /// The simulated reads.
    pub reads: ReadSet,
}

impl SimulatedDataset {
    /// Coverage actually realised by the generated reads.
    pub fn realized_coverage(&self) -> f64 {
        self.reads.total_bases() as f64 / self.reference.len() as f64
    }
}

/// The analogue of HC-2: the smaller of the two reference-backed read sets.
pub fn sim_hc2() -> DatasetPreset {
    DatasetPreset {
        name: "sim-hc2".into(),
        paper_dataset: "Homo sapiens chromosome 2".into(),
        genome: GenomeConfig {
            length: 200_000,
            gc_content: 0.41,
            repeat_families: 12,
            repeat_copies: 3,
            repeat_length: 150,
            seed: 0x4843_0002,
        },
        reads: ReadSimConfig {
            read_length: 100,
            coverage: 10.0,
            substitution_rate: 0.003,
            indel_rate: 0.0,
            n_rate: 0.0005,
            both_strands: true,
            seed: 0x5243_0002,
        },
        has_reference: true,
    }
}

/// The analogue of HC-X: twice the reference length of HC-2, same protocol.
pub fn sim_hcx() -> DatasetPreset {
    DatasetPreset {
        name: "sim-hcx".into(),
        paper_dataset: "Homo sapiens chromosome X".into(),
        genome: GenomeConfig {
            length: 400_000,
            gc_content: 0.40,
            repeat_families: 24,
            repeat_copies: 3,
            repeat_length: 150,
            seed: 0x4843_0058,
        },
        reads: ReadSimConfig {
            read_length: 100,
            coverage: 9.6,
            substitution_rate: 0.003,
            indel_rate: 0.0,
            n_rate: 0.0005,
            both_strands: true,
            seed: 0x5243_0058,
        },
        has_reference: true,
    }
}

/// The analogue of HC-14 (GAGE): deeper coverage, 101 bp reads.
pub fn sim_hc14() -> DatasetPreset {
    DatasetPreset {
        name: "sim-hc14".into(),
        paper_dataset: "Human chromosome 14 (GAGE)".into(),
        genome: GenomeConfig {
            length: 500_000,
            gc_content: 0.42,
            repeat_families: 30,
            repeat_copies: 3,
            repeat_length: 160,
            seed: 0x4843_000E,
        },
        reads: ReadSimConfig {
            read_length: 101,
            coverage: 21.0,
            substitution_rate: 0.004,
            indel_rate: 0.0,
            n_rate: 0.001,
            both_strands: true,
            seed: 0x5243_000E,
        },
        has_reference: false,
    }
}

/// The analogue of Bombus impatiens (GAGE): the largest dataset, 155 bp reads.
pub fn sim_bi() -> DatasetPreset {
    DatasetPreset {
        name: "sim-bi".into(),
        paper_dataset: "Bombus impatiens (GAGE)".into(),
        genome: GenomeConfig {
            length: 1_000_000,
            gc_content: 0.38,
            repeat_families: 60,
            repeat_copies: 3,
            repeat_length: 200,
            seed: 0x4249_0001,
        },
        reads: ReadSimConfig {
            read_length: 155,
            coverage: 30.0,
            substitution_rate: 0.004,
            indel_rate: 0.0,
            n_rate: 0.001,
            both_strands: true,
            seed: 0x5242_0001,
        },
        has_reference: false,
    }
}

/// An out-of-core stress preset: one to two orders of magnitude more data
/// volume than `sim-hc2`, sized so the assembler's resident working set
/// comfortably exceeds the spill caps exercised by the `out_of_core` bench.
/// Fully deterministic (fixed genome and read seeds) so spilled and resident
/// runs can be compared byte for byte.
pub fn sim_xl() -> DatasetPreset {
    DatasetPreset {
        name: "sim-xl".into(),
        paper_dataset: "Out-of-core stress (synthetic)".into(),
        genome: GenomeConfig {
            length: 2_000_000,
            gc_content: 0.41,
            repeat_families: 120,
            repeat_copies: 3,
            repeat_length: 180,
            seed: 0x584C_0001,
        },
        reads: ReadSimConfig {
            read_length: 120,
            coverage: 25.0,
            substitution_rate: 0.003,
            indel_rate: 0.0,
            n_rate: 0.0005,
            both_strands: true,
            seed: 0x584C_0002,
        },
        has_reference: true,
    }
}

/// All five presets: the four Table I analogues in increasing data volume,
/// followed by the synthetic out-of-core stress preset `sim-xl`.
pub fn all_presets() -> Vec<DatasetPreset> {
    vec![sim_hc2(), sim_hcx(), sim_hc14(), sim_bi(), sim_xl()]
}

/// Looks up a preset by name (`sim-hc2`, `sim-hcx`, `sim-hc14`, `sim-bi`,
/// `sim-xl`).
pub fn preset_by_name(name: &str) -> Option<DatasetPreset> {
    all_presets().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_in_increasing_volume() {
        let presets = all_presets();
        assert_eq!(presets.len(), 5);
        let volumes: Vec<usize> = presets
            .iter()
            .map(|p| p.expected_reads() * p.reads.read_length)
            .collect();
        for w in volumes.windows(2) {
            assert!(
                w[0] < w[1],
                "presets must be ordered by increasing data volume: {volumes:?}"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(preset_by_name("sim-hc2").unwrap().name, "sim-hc2");
        assert_eq!(
            preset_by_name("sim-bi").unwrap().paper_dataset,
            "Bombus impatiens (GAGE)"
        );
        assert!(preset_by_name("nope").is_none());
    }

    #[test]
    fn reference_availability_matches_paper() {
        assert!(preset_by_name("sim-hc2").unwrap().has_reference);
        assert!(preset_by_name("sim-hcx").unwrap().has_reference);
        assert!(!preset_by_name("sim-hc14").unwrap().has_reference);
        assert!(!preset_by_name("sim-bi").unwrap().has_reference);
        assert!(preset_by_name("sim-xl").unwrap().has_reference);
    }

    /// Full `sim-xl` generation is deliberately heavyweight; run with
    /// `cargo test -p ppa_readsim -- --ignored sim_xl_stress` when stress
    /// testing the out-of-core path.
    #[test]
    #[ignore = "generates the full 2 Mbp out-of-core stress dataset"]
    fn sim_xl_stress_generates_deterministically() {
        let a = sim_xl().generate();
        let b = sim_xl().generate();
        assert_eq!(a.reference.len(), 2_000_000);
        assert_eq!(a.reads.len(), a.preset.expected_reads());
        assert_eq!(b.reads.len(), a.reads.len());
        for (ra, rb) in a.reads.records.iter().zip(b.reads.records.iter()) {
            assert_eq!(ra.seq, rb.seq, "sim-xl must be deterministic");
        }
        let cov = a.realized_coverage();
        assert!((cov - 25.0).abs() < 2.0, "coverage {cov}");
    }

    #[test]
    fn scaled_changes_reference_length_only() {
        let p = sim_hc2();
        let bigger = p.scaled(2.0);
        assert_eq!(bigger.genome.length, 400_000);
        assert_eq!(bigger.reads.read_length, p.reads.read_length);
        assert_eq!(bigger.reads.coverage, p.reads.coverage);
        let smaller = p.scaled(0.1);
        assert_eq!(smaller.genome.length, 20_000);
    }

    #[test]
    fn generate_small_scaled_dataset() {
        let dataset = sim_hc2().scaled(0.05).generate();
        assert_eq!(dataset.reference.len(), 10_000);
        assert_eq!(dataset.reads.len(), dataset.preset.expected_reads());
        let cov = dataset.realized_coverage();
        assert!((cov - 10.0).abs() < 1.0, "coverage {cov}");
    }
}
