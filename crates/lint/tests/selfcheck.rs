//! Self-check: the linter, run over the real workspace, reports zero
//! findings — the architectural invariants it encodes actually hold on the
//! tree that ships it. Also validates the JSON report shape with a tiny
//! hand-rolled parser (no serde_json in the offline container).

use std::fs;
use std::path::Path;

use ppa_lint::{
    analyze_sources, render_json, render_text, walk, Diagnostic, Rule, SourceSpec, ALL_RULES,
};

#[test]
fn real_workspace_is_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_workspace_root(manifest_dir).expect("workspace root above crates/lint");
    let files = walk::collect_rust_files(&root).expect("walk workspace");
    assert!(
        files.len() > 20,
        "workspace walk found suspiciously few files: {}",
        files.len()
    );
    // The rules' allowlists name real files; if one is renamed the rule
    // silently stops covering it, so pin their existence here.
    for pinned in [
        "crates/pregel/src/kernels.rs",
        "crates/pregel/src/engine.rs",
        "crates/pregel/src/radix.rs",
        "crates/core/src/checkpoint.rs",
        "shims/serde/src/lib.rs",
        "crates/bench/src/legacy.rs",
        "crates/core/src/ops/label.rs",
    ] {
        assert!(
            files.iter().any(|(_, rel)| rel == pinned),
            "allowlisted file {pinned} no longer exists; update the rule tables"
        );
    }

    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(abs, rel)| (rel.clone(), fs::read_to_string(abs).expect("read source")))
        .collect();
    let specs: Vec<SourceSpec<'_>> = sources
        .iter()
        .map(|(path, text)| SourceSpec { path, text })
        .collect();
    let diags = analyze_sources(&specs);
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        render_text(&diags)
    );
}

// ---------------------------------------------------------------------------
// JSON output shape
// ---------------------------------------------------------------------------

/// Minimal JSON value for validating the report — recursive descent over
/// exactly the subset `render_json` emits.
#[derive(Debug, PartialEq)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key:?} in {self:?}")),
            other => panic!("not an object: {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("not a string: {other:?}"),
        }
    }

    fn as_num(&self) -> u64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("not a number: {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b'0'..=b'9' => self.number(),
            other => panic!("unexpected byte {:?} at {}", other as char, self.pos),
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut pairs = Vec::new();
        if self.peek() != b'}' {
            loop {
                let key = self.string();
                self.expect(b':');
                pairs.push((key, self.value()));
                if self.peek() == b',' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(b'}');
        Json::Obj(pairs)
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() != b']' {
            loop {
                items.push(self.value());
                if self.peek() == b',' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(b']');
        Json::Arr(items)
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().expect("unterminated str") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().expect("dangling escape");
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .expect("utf8 hex");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(code).expect("scalar value"));
                            self.pos += 4;
                        }
                        other => panic!("unknown escape \\{}", other as char),
                    }
                }
                _ => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 digits");
        Json::Num(text.parse().expect("u64 literal"))
    }
}

fn parse_json(text: &str) -> Json {
    let mut p = Parser::new(text);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing bytes after JSON document");
    v
}

#[test]
fn json_report_round_trips_through_a_parser() {
    let diags = vec![
        Diagnostic {
            rule: Rule::UnsafeAudit,
            file: "crates/core/src/adj.rs".into(),
            line: 7,
            col: 5,
            message: "`unsafe` with \"quotes\"\tand\nnewlines \\ backslash".into(),
        },
        Diagnostic {
            rule: Rule::NoSiphashHotPath,
            file: "crates/pregel/src/mapreduce.rs".into(),
            line: 42,
            col: 1,
            message: "std::collections::HashMap in hot path".into(),
        },
    ];
    let doc = parse_json(&render_json(&diags));
    assert_eq!(doc.get("count").as_num(), 2);
    let findings = doc.get("findings").as_arr();
    assert_eq!(findings.len(), 2);
    assert_eq!(findings[0].get("rule").as_str(), "unsafe-audit");
    assert_eq!(findings[0].get("file").as_str(), "crates/core/src/adj.rs");
    assert_eq!(findings[0].get("line").as_num(), 7);
    assert_eq!(findings[0].get("col").as_num(), 5);
    assert_eq!(
        findings[0].get("message").as_str(),
        "`unsafe` with \"quotes\"\tand\nnewlines \\ backslash"
    );
    assert_eq!(findings[1].get("rule").as_str(), "no-siphash-hot-path");
}

#[test]
fn empty_json_report_parses_with_zero_count() {
    let doc = parse_json(&render_json(&[]));
    assert_eq!(doc.get("count").as_num(), 0);
    assert!(doc.get("findings").as_arr().is_empty());
}

#[test]
fn rule_names_round_trip_and_have_descriptions() {
    for &rule in ALL_RULES {
        assert_eq!(Rule::from_name(rule.name()), Some(rule));
        assert!(!rule.description().is_empty());
        assert_eq!(rule.to_string(), rule.name());
    }
    assert_eq!(Rule::from_name("no-such-rule"), None);
}
