//! Fixture tests: embedded source snippets → expected diagnostics.
//!
//! Each launch rule gets at least one fixture proving it fires on a
//! violating snippet and stays quiet on a suppressed or allowlisted one,
//! plus lexer-robustness fixtures (strings containing keywords, nested
//! block comments, raw strings, `cfg(test)` nesting).

use ppa_lint::{analyze_pairs, Diagnostic, Rule};

fn diags_for(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_pairs(&[(path, src)])
}

fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

#[test]
fn unsafe_outside_allowlist_fires() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("allowlisted"));
}

#[test]
fn unsafe_in_allowlisted_file_without_safety_comment_fires() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diags = diags_for("crates/pregel/src/kernels.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
    assert!(diags[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_with_adjacent_safety_comment_is_quiet() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid.
    unsafe { *p }
}

pub fn trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller guarantees `p` is valid.
}

/* SAFETY: a block comment
   spanning lines also counts. */
pub unsafe fn g() {}
"#;
    assert!(diags_for("crates/pregel/src/kernels.rs", src).is_empty());
}

#[test]
fn safety_comment_above_attributes_is_adjacent() {
    let src = r#"
// SAFETY: caller must ensure AVX2; dispatch-gated.
#[cfg(target_arch = "x86_64")]
#[inline]
pub unsafe fn g() {}
"#;
    assert!(diags_for("crates/pregel/src/kernels.rs", src).is_empty());
}

#[test]
fn safety_comment_separated_by_blank_line_is_not_adjacent() {
    let src = r#"
// SAFETY: too far away.

pub unsafe fn g() {}
"#;
    let diags = diags_for("crates/pregel/src/kernels.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
}

#[test]
fn unsafe_suppressed_with_allow_is_quiet() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // ppa_lint: allow(unsafe-audit)
    unsafe { *p }
}
"#;
    assert!(diags_for("crates/core/src/adj.rs", src).is_empty());
}

#[test]
fn unsafe_in_test_module_is_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        let x = 1u8;
        let got = unsafe { *(&x as *const u8) };
        assert_eq!(got, 1);
    }
}
"#;
    assert!(diags_for("crates/core/src/adj.rs", src).is_empty());
}

#[test]
fn unsafe_in_integration_test_or_bench_file_is_exempt() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert!(diags_for("tests/tests/radix_alloc.rs", src).is_empty());
    assert!(diags_for("crates/bench/benches/kernels.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// panic-free-codecs
// ---------------------------------------------------------------------------

#[test]
fn unwrap_expect_panic_and_indexing_fire_in_codec_files() {
    let src = r#"
pub fn decode(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("second byte");
    if *first == 0 {
        panic!("zero");
    }
    bytes[2] + second
}
"#;
    let diags = diags_for("crates/core/src/checkpoint.rs", src);
    assert_eq!(
        rules_of(&diags),
        vec![
            Rule::PanicFreeCodecs,
            Rule::PanicFreeCodecs,
            Rule::PanicFreeCodecs,
            Rule::PanicFreeCodecs
        ]
    );
    // One each: unwrap, expect, panic!, slice-index.
    assert!(diags[0].message.contains("unwrap"));
    assert!(diags[1].message.contains("expect"));
    assert!(diags[2].message.contains("panic!"));
    assert!(diags[3].message.contains("indexing"));
}

#[test]
fn question_mark_indexing_fires() {
    let src = "fn f(b: &[u8]) -> Option<u8> { Some(b.first()?[0]) }\n";
    let diags = diags_for("shims/serde/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::PanicFreeCodecs]);
}

#[test]
fn non_indexing_brackets_are_quiet() {
    let src = r#"
#[derive(Debug)]
pub struct S {
    words: [u64; 4],
}
pub fn f() -> Vec<u8> {
    let [a, b] = [1u8, 2u8];
    let v = vec![a, b];
    let _: &[u8] = &v;
    v
}
"#;
    assert!(diags_for("crates/core/src/checkpoint.rs", src).is_empty());
}

#[test]
fn codec_rule_only_applies_to_codec_files() {
    let src = "pub fn f(b: &[u8]) -> u8 { b[0] }\n";
    assert!(diags_for("crates/core/src/ops/construct.rs", src).is_empty());
    assert!(diags_for("crates/quality/src/lib.rs", src).is_empty());
}

#[test]
fn codec_violations_in_test_module_are_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let v = vec![1u8];
        assert_eq!(v.first().unwrap(), &v[0]);
    }
}
"#;
    assert!(diags_for("crates/core/src/checkpoint.rs", src).is_empty());
}

#[test]
fn codec_violation_suppressed_with_allow_is_quiet() {
    let src = r#"
pub fn f(b: &[u8]) -> u8 {
    b[0] // ppa_lint: allow(panic-free-codecs)
}
"#;
    assert!(diags_for("crates/core/src/checkpoint.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// engine-only-threading
// ---------------------------------------------------------------------------

#[test]
fn thread_spawn_outside_engine_fires() {
    let src = r#"
pub fn run() {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().ok();
}
"#;
    let diags = diags_for("crates/pregel/src/runner.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::EngineOnlyThreading]);
    assert!(diags[0].message.contains("thread::spawn"));
}

#[test]
fn thread_scope_outside_engine_fires() {
    let src = "pub fn run() { std::thread::scope(|_| ()); }\n";
    let diags = diags_for("crates/core/src/ops/construct.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::EngineOnlyThreading]);
}

#[test]
fn thread_spawn_in_allowlisted_files_is_quiet() {
    let src = "pub fn run() { std::thread::spawn(|| ()).join().ok(); }\n";
    assert!(diags_for("crates/pregel/src/engine.rs", src).is_empty());
    assert!(diags_for("crates/bench/src/legacy.rs", src).is_empty());
}

#[test]
fn thread_spawn_in_comment_or_string_is_quiet() {
    let src = r##"
//! The engine owns all threads; never call thread::spawn elsewhere.
pub fn doc() -> &'static str {
    "thread::spawn is banned here"
}
pub fn raw() -> &'static str {
    r#"thread::scope too"#
}
"##;
    assert!(diags_for("crates/pregel/src/runner.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// no-siphash-hot-path
// ---------------------------------------------------------------------------

#[test]
fn std_hashmap_in_pregel_and_core_fires() {
    let src = "use std::collections::HashMap;\npub type M = HashMap<u64, u64>;\n";
    let diags = diags_for("crates/pregel/src/mapreduce.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::NoSiphashHotPath]);
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::NoSiphashHotPath]);
}

#[test]
fn std_hashmap_outside_hot_crates_is_quiet() {
    let src = "use std::collections::HashMap;\npub type M = HashMap<u64, u64>;\n";
    assert!(diags_for("crates/quality/src/lib.rs", src).is_empty());
    assert!(diags_for("crates/bench/src/legacy.rs", src).is_empty());
}

#[test]
fn fxhashmap_alias_definition_suppression_is_quiet() {
    let src = r#"
/// The replacement the rule points at.
// ppa_lint: allow(no-siphash-hot-path)
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, ()>;
"#;
    assert!(diags_for("crates/pregel/src/fxhash.rs", src).is_empty());
}

#[test]
fn std_hashmap_in_test_module_is_quiet() {
    let src = r#"
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn probe() {
        let m: HashMap<u64, u64> = HashMap::new();
        assert!(m.is_empty());
    }
}
"#;
    assert!(diags_for("crates/pregel/src/mapreduce.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// dispatch-only-intrinsics
// ---------------------------------------------------------------------------

const DISPATCH_DEF: &str = r#"
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure AVX2 (dispatcher-gated).
unsafe fn envelope_avx2(keys: &[u64]) -> u64 {
    keys.len() as u64
}

pub fn envelope(keys: &[u64]) -> u64 {
    // SAFETY: AVX2 verified by the dispatcher.
    unsafe { envelope_avx2(keys) }
}
"#;

#[test]
fn target_feature_call_outside_dispatch_layer_fires() {
    let caller = r#"
pub fn fast_path(keys: &[u64]) -> u64 {
    // SAFETY: (not enough — this bypasses the dispatcher)
    unsafe { envelope_avx2(keys) }
}
"#;
    let diags = analyze_pairs(&[
        ("crates/pregel/src/kernels.rs", DISPATCH_DEF),
        ("crates/pregel/src/engine.rs", caller),
    ]);
    assert_eq!(rules_of(&diags), vec![Rule::DispatchOnlyIntrinsics]);
    assert!(diags[0].message.contains("envelope_avx2"));
    assert!(diags[0].message.contains("kernels.rs"));
}

#[test]
fn target_feature_call_inside_defining_file_is_quiet() {
    let diags = analyze_pairs(&[("crates/pregel/src/kernels.rs", DISPATCH_DEF)]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn target_feature_call_in_test_code_is_quiet() {
    let caller = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn parity() {
        if std::arch::is_x86_feature_detected!("avx2") {
            let _ = unsafe { envelope_avx2(&[1, 2]) };
        }
    }
}
"#;
    let diags = analyze_pairs(&[
        ("crates/pregel/src/kernels.rs", DISPATCH_DEF),
        ("crates/pregel/src/radix.rs", caller),
    ]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---------------------------------------------------------------------------
// cancellation-points
// ---------------------------------------------------------------------------

#[test]
fn op_entry_point_without_a_polling_callee_fires() {
    let src = r#"
pub fn grind_on(ctx: &ExecCtx, nodes: &[u64]) -> u64 {
    let mut acc = 0;
    for n in nodes.iter() {
        acc += *n;
    }
    acc
}
"#;
    let diags = diags_for("crates/core/src/ops/grind.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::CancellationPoints]);
    assert!(diags[0].message.contains("grind_on"));
    assert!(diags[0].message.contains("JobControl"));
}

#[test]
fn op_routed_through_polling_runners_is_quiet() {
    let srcs = [
        "pub fn a_on(ctx: &ExecCtx) -> u64 { let m = ppa_pregel::run(&p, &c, &mut s); m }\n",
        "pub fn b_on(ctx: &ExecCtx) -> u64 { map_reduce_with_metrics_on(ctx, i, m, r).1 }\n",
        "pub fn c_on(ctx: &ExecCtx) -> u64 { let (cc, sv) = connected_components(adj, &c); sv }\n",
        "pub fn d_on(ctx: &ExecCtx) -> u64 { set.convert_on(ctx, f, merge).len() as u64 }\n",
        "pub fn e_on(ctx: &ExecCtx) -> u64 { try_run_on(ctx, &p, &c, &mut s).supersteps as u64 }\n",
    ];
    for src in srcs {
        assert!(
            diags_for("crates/core/src/ops/probe.rs", src).is_empty(),
            "false positive on: {src}"
        );
    }
}

#[test]
fn lookalike_on_calls_do_not_satisfy_the_rule() {
    // `node.sole_edge_on(side)` ends in `_on` but polls nothing, and a bare
    // `run(..)` that is not a path call could be any local helper.
    let src = r#"
pub fn walk_on(nodes: &[Node]) -> u64 {
    let e = nodes.first().map(|n| n.sole_edge_on(0));
    run(e)
}
fn run(e: Option<u64>) -> u64 {
    e.unwrap_or(0)
}
"#;
    let diags = diags_for("crates/core/src/ops/walk.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::CancellationPoints]);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn private_and_non_on_fns_are_exempt_from_cancellation_points() {
    let src = r#"
fn helper_on(x: u64) -> u64 { x }
pub fn leader(x: u64) -> u64 { helper_on(x) }
"#;
    assert!(diags_for("crates/core/src/ops/helper.rs", src).is_empty());
}

#[test]
fn cancellation_points_is_scoped_to_ops_and_suppressible() {
    // The same un-polling entry point outside `ops/` is fine...
    let src = "pub fn fused_on(x: u64) -> u64 { x }\n";
    assert!(diags_for("crates/core/src/node.rs", src).is_empty());
    // ...and inside `ops/` an explicit suppression silences it.
    let suppressed = r#"
// ppa_lint: allow(cancellation-points)
pub fn fused_on(x: u64) -> u64 { x }
"#;
    assert!(diags_for("crates/core/src/ops/fused.rs", suppressed).is_empty());
}

// ---------------------------------------------------------------------------
// Lexer robustness
// ---------------------------------------------------------------------------

#[test]
fn keywords_inside_strings_do_not_fire() {
    let src = r####"
pub fn docs() -> Vec<&'static str> {
    vec![
        "unsafe { *p }",
        "thread::spawn(|| ())",
        "std::collections::HashMap",
        r#"raw: unsafe fn g() { thread::scope }"#,
        r##"nested raw # unsafe"##,
        "escaped \" unsafe \" quote",
    ]
}
"####;
    assert!(diags_for("crates/pregel/src/runner.rs", src).is_empty());
}

#[test]
fn nested_block_comments_are_skipped() {
    let src = r#"
/* outer /* nested: unsafe { thread::spawn } */ still comment:
   std::collections::HashMap */
pub fn f() -> u8 {
    0
}
"#;
    assert!(diags_for("crates/pregel/src/runner.rs", src).is_empty());
}

#[test]
fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
    // A naive scanner treats `'a` as an unterminated char literal and
    // swallows the `unsafe` that follows the next quote.
    let src = r#"
pub fn f<'a>(x: &'a [u8]) -> u8 {
    let q = '"';
    let esc = '\'';
    let _ = (q, esc);
    unsafe { *x.as_ptr() }
}
"#;
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
    assert_eq!(diags[0].line, 6);
}

#[test]
fn cfg_test_nesting_tracks_region_ends() {
    // Code after the nested test regions close is linted again.
    let src = r#"
#[cfg(test)]
mod tests {
    mod inner {
        pub fn helper(p: *const u8) -> u8 {
            unsafe { *p }
        }
    }
}

pub fn after(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
    assert_eq!(diags[0].line, 12, "only the post-region unsafe fires");
}

#[test]
fn cfg_not_test_is_still_linted() {
    let src = r#"
#[cfg(not(test))]
pub fn prod(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
}

#[test]
fn cfg_test_gated_single_item_is_exempt_but_next_item_is_not() {
    let src = r#"
#[cfg(test)]
pub fn probe(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn prod(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let diags = diags_for("crates/core/src/adj.rs", src);
    assert_eq!(rules_of(&diags), vec![Rule::UnsafeAudit]);
    assert_eq!(diags[0].line, 8);
}

#[test]
fn suppression_line_above_and_multi_rule_lists_work() {
    let src = r#"
pub fn f(b: &[u8]) -> u8 {
    // ppa_lint: allow(panic-free-codecs, unsafe-audit)
    b[0]
}
"#;
    assert!(diags_for("crates/core/src/checkpoint.rs", src).is_empty());
    // The same directive does not silence an unrelated rule.
    let src2 = r#"
pub fn run() {
    // ppa_lint: allow(panic-free-codecs)
    std::thread::spawn(|| ()).join().ok();
}
"#;
    let diags = diags_for("crates/pregel/src/runner.rs", src2);
    assert_eq!(rules_of(&diags), vec![Rule::EngineOnlyThreading]);
}
