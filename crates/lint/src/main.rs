//! Driver binary: walk the workspace, run every rule, report findings.
//!
//! ```text
//! ppa_lint [--root PATH] [--format text|json] [--rule NAME]...
//!          [--deny-all] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean (or findings without `--deny-all`), 1 = findings
//! with `--deny-all`, 2 = usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ppa_lint::{analyze_sources, render_json, render_text, Rule, SourceSpec, ALL_RULES};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    list_rules: bool,
    rules: Vec<Rule>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny_all: false,
        list_rules: false,
        rules: Vec::new(),
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--rule" => {
                let v = args.next().ok_or("--rule requires a rule name")?;
                let rule = Rule::from_name(&v).ok_or(format!("unknown rule `{v}`"))?;
                opts.rules.push(rule);
            }
            "--deny-all" => opts.deny_all = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    let mut out = String::from(
        "usage: ppa_lint [--root PATH] [--format text|json] [--rule NAME]... \
         [--deny-all] [--list-rules]\n\nrules:\n",
    );
    for rule in ALL_RULES {
        out.push_str(&format!("  {:<26} {}\n", rule.name(), rule.description()));
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("ppa_lint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        env::current_dir()
            .ok()
            .and_then(|d| ppa_lint::walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("ppa_lint: no workspace root found (pass --root PATH)");
            return ExitCode::from(2);
        }
    };

    let files = match ppa_lint::walk::collect_rust_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ppa_lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut sources = Vec::with_capacity(files.len());
    for (abs, rel) in &files {
        match fs::read_to_string(abs) {
            Ok(text) => sources.push((rel.clone(), text)),
            Err(e) => {
                eprintln!("ppa_lint: reading {}: {e}", abs.display());
                return ExitCode::from(2);
            }
        }
    }
    let specs: Vec<SourceSpec<'_>> = sources
        .iter()
        .map(|(path, text)| SourceSpec { path, text })
        .collect();
    let mut diags = analyze_sources(&specs);
    if !opts.rules.is_empty() {
        diags.retain(|d| opts.rules.contains(&d.rule));
    }

    if opts.json {
        print!("{}", render_json(&diags));
    } else {
        print!("{}", render_text(&diags));
    }
    if opts.deny_all && !diags.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
