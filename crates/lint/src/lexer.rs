//! A hand-rolled Rust token scanner.
//!
//! The linter needs to reason about identifiers and punctuation while being
//! immune to the classic grep failure modes: the word `unsafe` inside a
//! string literal, `thread::spawn` inside a comment, nested `/* */` blocks,
//! raw strings, byte strings, and `'a'` char literals vs `'a` lifetimes.
//! This module produces a flat token stream plus per-line metadata (comment
//! text, whether the line carries code) and marks every token that lives in
//! test-only code (`#[cfg(test)]` items, `#[test]` fns, `mod tests { .. }`).
//!
//! It is *not* a full Rust lexer — it does not classify keywords, parse
//! float literals precisely, or validate escapes — but it never mistakes
//! literal/comment content for code, which is the property the rules need.

/// What kind of token was scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `thread`, `HashMap`, ...).
    Ident(String),
    /// A raw identifier, `r#type` — stored without the `r#` prefix.
    RawIdent(String),
    /// A single punctuation character (`#`, `[`, `:`, `!`, ...).
    Punct(char),
    /// A string, byte-string, raw-string, or char/byte literal.
    Literal,
    /// A numeric literal (including suffixed forms like `0u64`).
    Num,
    /// A lifetime, `'a` (also `'_`).
    Lifetime,
}

/// One scanned token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token payload.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
    /// True when the token is inside test-only code (see module docs).
    pub in_test: bool,
}

impl Token {
    /// Returns the identifier text when this token is a (raw) identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) | Tok::RawIdent(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Per-line metadata gathered while scanning.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Text of every comment that overlaps this line (block comments are
    /// recorded on each line they span, so adjacency checks see them).
    pub comments: Vec<String>,
    /// True when at least one code token starts on (or spans) this line.
    pub has_code: bool,
    /// True when the first code token on the line is `#` (attribute line).
    pub starts_with_hash: bool,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// Per-line metadata, index 0 == line 1.
    pub lines: Vec<LineInfo>,
}

impl Lexed {
    /// Line metadata for 1-based line `line`, if the file has that line.
    pub fn line(&self, line: usize) -> Option<&LineInfo> {
        self.lines.get(line.wrapping_sub(1))
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Lexed,
}

/// Scans `src` into tokens plus line metadata and marks test regions.
pub fn lex(src: &str) -> Lexed {
    let line_count = src.lines().count().max(1);
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed {
            tokens: Vec::new(),
            lines: vec![LineInfo::default(); line_count],
        },
    };
    s.run();
    let mut lexed = s.out;
    mark_test_regions(&mut lexed.tokens);
    lexed
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn mark_code(&mut self, line: usize, is_hash: bool) {
        if let Some(info) = self.out.lines.get_mut(line - 1) {
            if !info.has_code {
                info.starts_with_hash = is_hash;
            }
            info.has_code = true;
        }
    }

    fn push_token(&mut self, tok: Tok, line: usize, col: usize) {
        let is_hash = tok == Tok::Punct('#');
        self.mark_code(line, is_hash);
        self.out.tokens.push(Token {
            tok,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => {
                    self.bump();
                    self.string_body(line);
                    self.push_token(Tok::Literal, line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'r' | b'b' if self.try_prefixed_literal(line, col) => {}
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    let text = self.take_ident();
                    self.push_token(Tok::Ident(text), line, col);
                }
                b'0'..=b'9' => {
                    // Consume the alphanumeric tail so `0x1f`, `1_000u64`
                    // etc. stay one token; `.` in floats is left as punct,
                    // which is harmless for the rules.
                    self.take_ident();
                    self.push_token(Tok::Num, line, col);
                }
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 continuation bytes are consumed
                    // without emitting tokens.
                    if b.is_ascii() {
                        self.push_token(Tok::Punct(b as char), line, col);
                    }
                }
            }
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self, line: usize) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if let Some(info) = self.out.lines.get_mut(line - 1) {
            info.comments.push(text);
        }
    }

    fn block_comment(&mut self, start_line: usize) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let end_line = self.line;
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // Record the comment on every line it spans so adjacency walks and
        // suppression lookups work for multi-line `/* SAFETY: ... */`.
        for l in start_line..=end_line {
            if let Some(info) = self.out.lines.get_mut(l - 1) {
                info.comments.push(text.clone());
            }
        }
    }

    /// Consumes a string body after the opening quote, handling escapes and
    /// embedded newlines; marks every spanned line as carrying code.
    fn string_body(&mut self, start_line: usize) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        for l in start_line..=self.line {
            self.mark_code(l, false);
        }
    }

    /// Consumes a raw string after `r`/`br` once the `#` count is known.
    fn raw_string_body(&mut self, hashes: usize, start_line: usize) {
        // Skip the hashes and the opening quote.
        for _ in 0..hashes + 1 {
            self.bump();
        }
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {
                    self.bump();
                }
                None => break,
            }
        }
        for l in start_line..=self.line {
            self.mark_code(l, false);
        }
    }

    /// Tries to scan `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, or
    /// a raw identifier `r#name`. Returns false when the `r`/`b` at the
    /// cursor is just the start of a plain identifier.
    fn try_prefixed_literal(&mut self, line: usize, col: usize) -> bool {
        let b0 = self.peek(0).unwrap_or(0);
        let (prefix_len, rest) = match (b0, self.peek(1)) {
            (b'b', Some(b'r')) => (2, self.peek(2)),
            _ => (1, self.peek(1)),
        };
        match rest {
            Some(b'"') => {
                for _ in 0..prefix_len {
                    self.bump();
                }
                if b0 == b'r' || prefix_len == 2 {
                    self.raw_string_body(0, line);
                } else {
                    self.bump();
                    self.string_body(line);
                }
                self.push_token(Tok::Literal, line, col);
                true
            }
            Some(b'#') => {
                // Count hashes; a quote after them means raw string, an
                // identifier char after `r#` means raw identifier.
                let mut hashes = 0usize;
                while self.peek(prefix_len + hashes) == Some(b'#') {
                    hashes += 1;
                }
                match self.peek(prefix_len + hashes) {
                    Some(b'"') => {
                        for _ in 0..prefix_len {
                            self.bump();
                        }
                        self.raw_string_body(hashes, line);
                        self.push_token(Tok::Literal, line, col);
                        true
                    }
                    Some(c)
                        if b0 == b'r' && hashes == 1 && (c == b'_' || c.is_ascii_alphabetic()) =>
                    {
                        self.bump();
                        self.bump();
                        let text = self.take_ident();
                        self.push_token(Tok::RawIdent(text), line, col);
                        true
                    }
                    _ => false,
                }
            }
            Some(b'\'') if b0 == b'b' => {
                self.bump();
                self.char_literal_body();
                self.push_token(Tok::Literal, line, col);
                true
            }
            _ => false,
        }
    }

    /// Consumes `'...'` starting at the opening quote.
    fn char_literal_body(&mut self) {
        self.bump(); // opening '
        if self.peek(0) == Some(b'\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(_) => self.peek(2) == Some(b'\''),
            None => false,
        };
        if is_char {
            self.char_literal_body();
            self.push_token(Tok::Literal, line, col);
        } else {
            self.bump();
            self.take_ident();
            self.push_token(Tok::Lifetime, line, col);
        }
    }
}

/// Marks tokens that live inside test-only code.
///
/// A test region opens at the `{` of an item annotated `#[cfg(test)]` /
/// `#[test]` (including `cfg(all(test, ...))` — any `test` predicate not
/// wrapped in `not(...)`) or of a `mod tests` declaration, and closes at the
/// matching `}`. Regions nest; a pending attribute is cancelled by a `;` at
/// the same depth (e.g. `#[cfg(test)] mod tests;`).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut depth = 0usize;
    let mut regions: Vec<usize> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let in_test = !regions.is_empty();
        tokens[i].in_test = in_test || pending;
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute's token tree to its matching `]`.
            let mut j = i + 2;
            let mut bracket = 1usize;
            while j < tokens.len() && bracket > 0 {
                if tokens[j].is_punct('[') {
                    bracket += 1;
                } else if tokens[j].is_punct(']') {
                    bracket -= 1;
                }
                j += 1;
            }
            if attr_is_test(&tokens[i + 2..j.saturating_sub(1)]) {
                pending = true;
            }
            for t in tokens[i..j].iter_mut() {
                t.in_test = in_test || pending;
            }
            i = j;
            continue;
        }
        match &tokens[i].tok {
            Tok::Ident(s)
                if s == "mod" && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests")) =>
            {
                pending = true;
                tokens[i].in_test = true;
            }
            Tok::Punct(';') => pending = false,
            Tok::Punct('{') => {
                if pending {
                    regions.push(depth);
                    pending = false;
                    tokens[i].in_test = true;
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if regions.last() == Some(&depth) {
                    regions.pop();
                    // The closing brace itself still belongs to the region.
                    tokens[i].in_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// True when an attribute body (`cfg(test)`, `test`, `cfg(all(test, ..))`)
/// gates the annotated item to test builds. `cfg(not(test))` does not.
fn attr_is_test(body: &[Token]) -> bool {
    let first = match body.first() {
        Some(t) => t,
        None => return false,
    };
    if first.is_ident("test") && body.len() == 1 {
        return true;
    }
    if !first.is_ident("cfg") {
        return false;
    }
    // Walk the predicate, tracking paren depth and the depths at which a
    // `not(` group opened; a bare `test` outside every `not` wins.
    let mut paren = 0usize;
    let mut not_depths: Vec<usize> = Vec::new();
    let mut k = 1;
    while k < body.len() {
        let t = &body[k];
        if t.is_ident("not") && body.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            not_depths.push(paren);
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
            while not_depths.last().is_some_and(|d| *d >= paren) {
                not_depths.pop();
            }
        } else if t.is_ident("test") && not_depths.is_empty() {
            return true;
        }
        k += 1;
    }
    false
}
