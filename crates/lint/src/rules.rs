//! The rule implementations.
//!
//! Every rule operates on the token stream from [`crate::lexer`], so string
//! and comment content can never trigger a finding, and anything inside a
//! `#[cfg(test)]` / `mod tests` region (or an integration-test/bench file)
//! is exempt unless noted otherwise.

use crate::lexer::{lex, Lexed, Tok, Token};
use crate::report::{Diagnostic, Rule};
use std::collections::HashMap;

/// Files where `unsafe` is architecturally permitted (the SIMD kernel
/// layer, the worker pool's lifetime erasure, the radix scatter).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/pregel/src/kernels.rs",
    "crates/pregel/src/engine.rs",
    "crates/pregel/src/radix.rs",
];

/// The codec files that must never panic on malformed bytes.
const CODEC_FILES: &[&str] = &[
    "crates/core/src/checkpoint.rs",
    "crates/pregel/src/chain.rs",
    "crates/pregel/src/spill.rs",
    "shims/serde/src/lib.rs",
];

/// Files allowed to spawn OS threads: the persistent worker pool and the
/// pre-pool legacy baseline kept for benchmarking.
const THREAD_ALLOWLIST: &[&str] = &["crates/pregel/src/engine.rs", "crates/bench/src/legacy.rs"];

/// Path prefixes where SipHash `HashMap` is banned in favor of `FxHashMap`.
const SIPHASH_SCOPES: &[&str] = &["crates/pregel/", "crates/core/"];

/// Directory whose public `*_on` entry points must be cancellable.
const OPS_DIR: &str = "crates/core/src/ops/";

/// Runner entry points whose barriers poll the installed `JobControl`. An op
/// routed through any of these is stoppable mid-flight. An explicit allowlist
/// rather than a `*_on` suffix heuristic: method calls like
/// `node.sole_edge_on(side)` must not satisfy the rule by accident, which is
/// also why bare `run` only counts as a *path* call (`ppa_pregel::run(`,
/// `runner::run(`) — see `is_polling_call`.
const POLLING_CALLEES: &[&str] = &[
    "run_on",
    "try_run_on",
    "run_from_pairs",
    "map_reduce_on",
    "map_reduce_with_metrics_on",
    "map_reduce_partitioned_on",
    "map_reduce_spillable_on",
    "convert_on",
    "connected_components",
];

/// Identifiers that legitimately precede a `[` without being an indexable
/// expression (`let [a, b] = ..`, `for x in [..]`, `return [..]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "as", "box", "move", "while",
    "for", "loop", "break", "continue", "where", "unsafe", "dyn", "impl", "pub", "fn", "use",
    "const", "static", "enum", "struct", "trait", "type", "mod", "crate", "super", "await",
    "async", "yield",
];

/// One file handed to the analyzer: a workspace-relative path (forward
/// slashes) and its source text.
#[derive(Debug, Clone, Copy)]
pub struct SourceSpec<'a> {
    /// Workspace-relative path, e.g. `crates/pregel/src/engine.rs`.
    pub path: &'a str,
    /// The file's full source text.
    pub text: &'a str,
}

struct AnalyzedFile {
    path: String,
    lexed: Lexed,
    /// Integration-test or bench file: every rule skips it entirely.
    is_test_file: bool,
    /// line -> rule names allowed by a `ppa_lint: allow(..)` comment
    /// overlapping that line.
    allows: HashMap<usize, Vec<String>>,
}

/// Runs every rule over `files` and returns the unsuppressed findings,
/// sorted by (file, line, col).
pub fn analyze_sources(files: &[SourceSpec<'_>]) -> Vec<Diagnostic> {
    let analyzed: Vec<AnalyzedFile> = files
        .iter()
        .map(|spec| {
            let lexed = lex(spec.text);
            let allows = collect_allows(&lexed);
            AnalyzedFile {
                path: spec.path.to_string(),
                lexed,
                is_test_file: is_test_path(spec.path),
                allows,
            }
        })
        .collect();

    let intrinsics = collect_intrinsics(&analyzed);

    let mut diags = Vec::new();
    for file in &analyzed {
        if file.is_test_file {
            continue;
        }
        check_unsafe_audit(file, &mut diags);
        check_panic_free_codecs(file, &mut diags);
        check_engine_only_threading(file, &mut diags);
        check_no_siphash(file, &mut diags);
        check_dispatch_only_intrinsics(file, &intrinsics, &mut diags);
        check_cancellation_points(file, &mut diags);
    }

    diags.retain(|d| {
        let file = analyzed.iter().find(|f| f.path == d.file);
        match file {
            Some(f) => !is_suppressed(f, d),
            None => true,
        }
    });
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Integration-test crates (`tests/`), per-crate `tests/` dirs, and bench
/// harnesses are test code by construction.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// Extracts `ppa_lint: allow(rule-a, rule-b)` directives from comments.
fn collect_allows(lexed: &Lexed) -> HashMap<usize, Vec<String>> {
    let mut allows: HashMap<usize, Vec<String>> = HashMap::new();
    for (idx, info) in lexed.lines.iter().enumerate() {
        for comment in &info.comments {
            let Some(at) = comment.find("ppa_lint:") else {
                continue;
            };
            let rest = &comment[at + "ppa_lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                continue;
            };
            let args = &rest[open + "allow(".len()..];
            let Some(close) = args.find(')') else {
                continue;
            };
            let names = args[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty());
            allows.entry(idx + 1).or_default().extend(names);
        }
    }
    allows
}

/// A finding is suppressed by an allow directive on its own line or on the
/// line directly above it.
fn is_suppressed(file: &AnalyzedFile, d: &Diagnostic) -> bool {
    [d.line, d.line.saturating_sub(1)]
        .iter()
        .any(|l| match file.allows.get(l) {
            Some(names) => names.iter().any(|n| n == d.rule.name()),
            None => false,
        })
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

fn check_unsafe_audit(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&file.path.as_str());
    for tok in &file.lexed.tokens {
        if tok.in_test || !tok.is_ident("unsafe") {
            continue;
        }
        if !allowlisted {
            diags.push(Diagnostic {
                rule: Rule::UnsafeAudit,
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`unsafe` outside the allowlisted modules ({})",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        } else if !has_adjacent_safety_comment(&file.lexed, tok.line) {
            diags.push(Diagnostic {
                rule: Rule::UnsafeAudit,
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            });
        }
    }
}

/// Looks for a comment containing `SAFETY:` on the `unsafe` token's own
/// line, or on the contiguous run of comment-only / attribute lines
/// directly above it. A blank line or a code line ends the search.
fn has_adjacent_safety_comment(lexed: &Lexed, line: usize) -> bool {
    let mentions_safety =
        |info: &crate::lexer::LineInfo| info.comments.iter().any(|c| c.contains("SAFETY:"));
    if lexed.line(line).is_some_and(mentions_safety) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let Some(info) = lexed.line(l) else { break };
        let comment_only = !info.has_code && !info.comments.is_empty();
        let attr_line = info.has_code && info.starts_with_hash;
        if !(comment_only || attr_line) {
            break;
        }
        if mentions_safety(info) {
            return true;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// panic-free-codecs
// ---------------------------------------------------------------------------

fn check_panic_free_codecs(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if !CODEC_FILES.contains(&file.path.as_str()) {
        return;
    }
    let toks = &file.lexed.tokens;
    let mut push = |tok: &Token, message: String| {
        diags.push(Diagnostic {
            rule: Rule::PanicFreeCodecs,
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        });
    };
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);
        match &tok.tok {
            Tok::Ident(s) if (s == "unwrap" || s == "expect") => {
                let is_method_call =
                    prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('));
                if is_method_call {
                    push(
                        tok,
                        format!("`.{s}()` in codec code; return a typed error instead"),
                    );
                }
            }
            Tok::Ident(s) if s == "panic" && next.is_some_and(|n| n.is_punct('!')) => {
                push(
                    tok,
                    "`panic!` in codec code; return a typed error instead".into(),
                );
            }
            Tok::Punct('[') => {
                let indexable = prev.is_some_and(|p| match &p.tok {
                    Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    Tok::RawIdent(_) => true,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
                    _ => false,
                });
                if indexable {
                    push(
                        tok,
                        "slice/array indexing in codec code can panic; use `get`/iterators".into(),
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// engine-only-threading
// ---------------------------------------------------------------------------

fn check_engine_only_threading(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if THREAD_ALLOWLIST.contains(&file.path.as_str()) {
        return;
    }
    for (i, tok) in file.lexed.tokens.iter().enumerate() {
        if tok.in_test || !tok.is_ident("thread") {
            continue;
        }
        let toks = &file.lexed.tokens;
        let path_sep = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        let target = toks
            .get(i + 3)
            .and_then(|t| t.ident())
            .filter(|n| *n == "spawn" || *n == "scope");
        if let (true, Some(name)) = (path_sep, target) {
            diags.push(Diagnostic {
                rule: Rule::EngineOnlyThreading,
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`thread::{name}` outside the engine worker pool ({})",
                    THREAD_ALLOWLIST.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// no-siphash-hot-path
// ---------------------------------------------------------------------------

fn check_no_siphash(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if !SIPHASH_SCOPES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test || !tok.is_ident("collections") {
            continue;
        }
        let path_sep = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        let is_hashmap = toks.get(i + 3).is_some_and(|t| t.is_ident("HashMap"));
        if path_sep && is_hashmap {
            let t = toks.get(i + 3).unwrap_or(tok);
            diags.push(Diagnostic {
                rule: Rule::NoSiphashHotPath,
                file: file.path.clone(),
                line: t.line,
                col: t.col,
                message: "SipHash `HashMap` on a hot path; use `crate::fxhash::FxHashMap`"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// cancellation-points
// ---------------------------------------------------------------------------

/// Whether the token at `i` is a call to a control-polling runner entry
/// point: an allowlisted identifier followed by `(`, or a *path* call to
/// `run` (`::run(`).
fn is_polling_call(toks: &[Token], i: usize) -> bool {
    let Some(name) = toks[i].ident() else {
        return false;
    };
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    if POLLING_CALLEES.contains(&name) {
        return true;
    }
    name == "run"
        && i.checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|p| p.is_punct(':'))
}

/// Every `pub fn *_on` in `crates/core/src/ops/` must route through a
/// runner path that polls the job control at its barriers; an op entry point
/// that loops privately would be unstoppable once started.
fn check_cancellation_points(file: &AnalyzedFile, diags: &mut Vec<Diagnostic>) {
    if !file.path.starts_with(OPS_DIR) {
        return;
    }
    let toks = &file.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_entry = !toks[i].in_test
            && toks[i].is_ident("fn")
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|p| p.is_ident("pub"));
        let name_tok = if is_entry { toks.get(i + 1) } else { None };
        let Some((name_tok, name)) = name_tok.and_then(|t| t.ident().map(|n| (t, n))) else {
            i += 1;
            continue;
        };
        if !name.ends_with("_on") {
            i += 1;
            continue;
        }
        // The body is the first brace after the signature (generic bounds and
        // where clauses contain no `{`); scan it to its matching close.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0usize;
        let mut polls = false;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if is_polling_call(toks, j) {
                polls = true;
            }
            j += 1;
        }
        if !polls && body_start < toks.len() {
            diags.push(Diagnostic {
                rule: Rule::CancellationPoints,
                file: file.path.clone(),
                line: name_tok.line,
                col: name_tok.col,
                message: format!(
                    "op entry point `{name}` never reaches a control-polling runner path \
                     (run/run_on/try_run_on/run_from_pairs/map_reduce*_on/convert_on/\
                     connected_components); a JobControl could not stop it"
                ),
            });
        }
        i = j.max(i + 1);
    }
}

// ---------------------------------------------------------------------------
// dispatch-only-intrinsics
// ---------------------------------------------------------------------------

/// Pass 1: map every `#[target_feature]` fn name to the file defining it.
fn collect_intrinsics(files: &[AnalyzedFile]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for file in files {
        let toks = &file.lexed.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
                i += 1;
                continue;
            }
            // Scan the attribute token tree to its matching `]`.
            let mut j = i + 2;
            let mut bracket = 1usize;
            let mut has_target_feature = false;
            while j < toks.len() && bracket > 0 {
                if toks[j].is_punct('[') {
                    bracket += 1;
                } else if toks[j].is_punct(']') {
                    bracket -= 1;
                } else if toks[j].is_ident("target_feature") {
                    has_target_feature = true;
                }
                j += 1;
            }
            if has_target_feature {
                // Skip any further attributes / qualifiers up to the `fn`.
                let mut k = j;
                let limit = (j + 64).min(toks.len());
                while k < limit {
                    if toks[k].is_ident("fn") {
                        if let Some(name) = toks.get(k + 1).and_then(|t| t.ident()) {
                            map.insert(name.to_string(), file.path.clone());
                        }
                        break;
                    }
                    if toks[k].is_punct('{') || toks[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
            }
            i = j;
        }
    }
    map
}

/// Pass 2: flag calls to a `#[target_feature]` fn from any other file.
fn check_dispatch_only_intrinsics(
    file: &AnalyzedFile,
    intrinsics: &HashMap<String, String>,
    diags: &mut Vec<Diagnostic>,
) {
    if intrinsics.is_empty() {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        let Some(name) = tok.ident() else { continue };
        let Some(def_file) = intrinsics.get(name) else {
            continue;
        };
        if *def_file == file.path {
            continue;
        }
        let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let is_def = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|p| p.is_ident("fn"));
        if is_call && !is_def {
            diags.push(Diagnostic {
                rule: Rule::DispatchOnlyIntrinsics,
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "call to `#[target_feature]` fn `{name}` outside its dispatch layer \
                     ({def_file})"
                ),
            });
        }
    }
}
