//! Diagnostic types and text/JSON rendering.

use std::fmt;

/// The architectural rules: the five launch rules plus the job-control
/// cancellation rule. Future invariants (spill-file codecs) get added here
/// and in `rules.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unsafe` only in allowlisted modules, always with a `// SAFETY:`
    /// comment adjacent to the block or fn.
    UnsafeAudit,
    /// No `unwrap`/`expect`/`panic!`/slice-indexing in the non-test code of
    /// the checkpoint and binary-codec files.
    PanicFreeCodecs,
    /// `thread::spawn` / `thread::scope` only inside the engine's worker
    /// pool (and the pre-pool legacy baseline).
    EngineOnlyThreading,
    /// No `std::collections::HashMap` in `pregel`/`core` non-test code.
    NoSiphashHotPath,
    /// `#[target_feature]` fns are only callable from their defining
    /// dispatch module.
    DispatchOnlyIntrinsics,
    /// Every public `*_on` op entry point must route through a
    /// control-polling runner path, so an installed `JobControl` can stop
    /// any long-running operation at a barrier.
    CancellationPoints,
}

/// All rules, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::UnsafeAudit,
    Rule::PanicFreeCodecs,
    Rule::EngineOnlyThreading,
    Rule::NoSiphashHotPath,
    Rule::DispatchOnlyIntrinsics,
    Rule::CancellationPoints,
];

impl Rule {
    /// The kebab-case name used in reports and `ppa_lint: allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::PanicFreeCodecs => "panic-free-codecs",
            Rule::EngineOnlyThreading => "engine-only-threading",
            Rule::NoSiphashHotPath => "no-siphash-hot-path",
            Rule::DispatchOnlyIntrinsics => "dispatch-only-intrinsics",
            Rule::CancellationPoints => "cancellation-points",
        }
    }

    /// Parses a rule name as written in a suppression or `--rule` flag.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::UnsafeAudit => {
                "`unsafe` needs an adjacent `// SAFETY:` comment and is only \
                 permitted in pregel/{kernels,engine,radix}.rs"
            }
            Rule::PanicFreeCodecs => {
                "no unwrap/expect/panic!/slice-index in non-test code of \
                 core/src/checkpoint.rs and shims/serde's bin codecs"
            }
            Rule::EngineOnlyThreading => {
                "thread::spawn/thread::scope only in pregel/src/engine.rs \
                 and bench/src/legacy.rs"
            }
            Rule::NoSiphashHotPath => {
                "std::collections::HashMap banned in pregel/core non-test \
                 code; use FxHashMap"
            }
            Rule::DispatchOnlyIntrinsics => {
                "#[target_feature] fns may only be called from the file that \
                 defines them (the dispatch layer)"
            }
            Rule::CancellationPoints => {
                "every `pub fn *_on` in core/src/ops must call a \
                 control-polling runner entry point (run/run_on/map_reduce*/\
                 convert_on/connected_components)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a file:line:col span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation of this specific finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders diagnostics as plain text, one per line, plus a summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str("ppa_lint: clean\n");
    } else {
        out.push_str(&format!("ppa_lint: {} finding(s)\n", diags.len()));
    }
    out
}

/// Renders diagnostics as a JSON document:
/// `{"findings": [{rule, file, line, col, message}, ..], "count": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", json_escape(d.rule.name())));
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        out.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", diags.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
