//! `ppa_lint` — a from-scratch, zero-dependency static-analysis pass that
//! enforces the workspace's architectural invariants.
//!
//! The ROADMAP writes the project's safety story down in prose: `unsafe`
//! lives only in the SIMD kernel layer / worker pool / radix scatter, the
//! checkpoint codecs never panic on malformed bytes, only the engine spawns
//! threads, and hot paths avoid SipHash. This crate turns that prose into
//! typed diagnostics with `file:line` spans, so CI can reject violations
//! before a reviewer has to remember them. See `crates/lint/README.md` for
//! the rule catalogue and suppression syntax.
//!
//! Design constraints:
//! - **Zero dependencies** (no `syn`, no `proc-macro2`): the container is
//!   offline, and the linter must not depend on anything it lints. The
//!   lexer in [`lexer`] is hand-rolled and token-exact for the properties
//!   the rules need (comments, strings, raw strings, char literals,
//!   `cfg(test)` regions).
//! - **Typed rules**: each rule is an enum variant ([`report::Rule`]) with a
//!   stable kebab-case name used in reports and in per-site
//!   `// ppa_lint: allow(<rule>)` suppressions.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{render_json, render_text, Diagnostic, Rule, ALL_RULES};
pub use rules::{analyze_sources, SourceSpec};

/// Convenience entry point: lints in-memory `(path, text)` pairs. Used by
/// the fixture tests and any embedder that already has sources loaded.
pub fn analyze_pairs(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let specs: Vec<SourceSpec<'_>> = files
        .iter()
        .map(|(path, text)| SourceSpec { path, text })
        .collect();
    analyze_sources(&specs)
}
