//! Workspace discovery: find the root and collect the `.rs` files to lint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file under `root` (skipping build output and VCS
/// metadata), returning `(absolute path, workspace-relative path)` pairs
/// sorted by relative path. Relative paths always use forward slashes.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((path, rel));
            }
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}
