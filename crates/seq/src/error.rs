//! Error type shared by the sequence primitives.

use std::fmt;

/// Errors produced while parsing or manipulating DNA sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A character outside of `A`, `C`, `G`, `T`, `N` (case-insensitive) was
    /// encountered where a nucleotide was expected.
    InvalidBase(char),
    /// A k value outside of the supported range `1..=31` was requested.
    InvalidK(usize),
    /// The input sequence was shorter than required (e.g. shorter than `k`).
    SequenceTooShort {
        /// Length that was required.
        required: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// A FASTA/FASTQ record was malformed.
    MalformedRecord(String),
    /// A FASTA/FASTQ record was malformed, with the 1-based line number at
    /// which the problem was detected.
    Parse {
        /// 1-based line number in the input stream.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// An I/O error occurred while reading or writing sequence files.
    Io(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase(c) => write!(f, "invalid nucleotide character {c:?}"),
            SeqError::InvalidK(k) => write!(f, "k={k} is outside the supported range 1..=31"),
            SeqError::SequenceTooShort { required, actual } => {
                write!(f, "sequence too short: required {required}, got {actual}")
            }
            SeqError::MalformedRecord(msg) => write!(f, "malformed FASTA/FASTQ record: {msg}"),
            SeqError::Parse { line, msg } => {
                write!(f, "malformed FASTA/FASTQ record at line {line}: {msg}")
            }
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            SeqError::InvalidBase('x').to_string(),
            SeqError::InvalidK(40).to_string(),
            SeqError::SequenceTooShort {
                required: 32,
                actual: 5,
            }
            .to_string(),
            SeqError::MalformedRecord("bad".into()).to_string(),
            SeqError::Io("disk".into()).to_string(),
            SeqError::Parse {
                line: 17,
                msg: "odd".into(),
            }
            .to_string(),
        ];
        assert!(msgs[0].contains('x'));
        assert!(msgs[1].contains("40"));
        assert!(msgs[2].contains("32") && msgs[2].contains('5'));
        assert!(msgs[3].contains("bad"));
        assert!(msgs[4].contains("disk"));
        assert!(msgs[5].contains("17") && msgs[5].contains("odd"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::other("boom");
        let e: SeqError = io.into();
        assert!(matches!(e, SeqError::Io(ref m) if m.contains("boom")));
    }
}
