//! Minimal FASTA/FASTQ reading and writing.
//!
//! The datasets of the paper (Table I) are FASTQ read sets; the assemblers
//! output contigs as FASTA. Reads may contain `N` characters, which the DBG
//! construction treats as break points (Section IV-B ①), so read sequences
//! are stored as raw ASCII bytes rather than [`DnaString`](crate::DnaString)s.

use crate::SeqError;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One sequencing read (or reference record).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastxRecord {
    /// Record name (without the leading `>` / `@`).
    pub id: String,
    /// Sequence bytes (`A`, `C`, `G`, `T`, `N`, case preserved).
    pub seq: Vec<u8>,
    /// Per-base quality bytes for FASTQ records; empty for FASTA records.
    pub qual: Vec<u8>,
}

impl FastxRecord {
    /// Creates a FASTA-style record without qualities.
    pub fn new_fasta(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> FastxRecord {
        FastxRecord {
            id: id.into(),
            seq: seq.into(),
            qual: Vec::new(),
        }
    }

    /// Creates a FASTQ-style record with qualities.
    pub fn new_fastq(
        id: impl Into<String>,
        seq: impl Into<Vec<u8>>,
        qual: impl Into<Vec<u8>>,
    ) -> FastxRecord {
        FastxRecord {
            id: id.into(),
            seq: seq.into(),
            qual: qual.into(),
        }
    }

    /// Length of the sequence in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Splits the sequence on `N`s (and any other non-ACGT character) into
    /// maximal ACGT-only segments, as required before (k+1)-mer extraction.
    pub fn acgt_segments(&self) -> Vec<&[u8]> {
        let mut segments = Vec::new();
        let mut start = None;
        for (i, &c) in self.seq.iter().enumerate() {
            if crate::Base::from_ascii_checked(c).is_some() {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                segments.push(&self.seq[s..i]);
            }
        }
        if let Some(s) = start {
            segments.push(&self.seq[s..]);
        }
        segments
    }
}

/// An in-memory collection of reads, the unit of input for the assemblers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadSet {
    /// The reads.
    pub records: Vec<FastxRecord>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// Wraps a vector of records.
    pub fn from_records(records: Vec<FastxRecord>) -> ReadSet {
        ReadSet { records }
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no reads.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.records.iter().map(|r| r.len()).sum()
    }

    /// Mean read length in bases (0 if empty).
    pub fn mean_read_length(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_bases() as f64 / self.records.len() as f64
        }
    }

    /// Parses FASTQ from a buffered reader.
    ///
    /// Malformed input — a truncated record, a `+` separator or quality line
    /// that does not match, or a sequence character outside `ACGTN`
    /// (case-insensitive) — is reported as [`SeqError::Parse`] with the
    /// 1-based line number at which the problem was detected, never a panic.
    pub fn read_fastq<R: BufRead>(reader: R) -> Result<ReadSet, SeqError> {
        let mut records = Vec::new();
        let mut lines = reader.lines();
        let mut line_no: usize = 0;
        let next_line = |lines: &mut std::io::Lines<R>,
                         line_no: &mut usize,
                         what: &str|
         -> Result<String, SeqError> {
            match lines.next() {
                Some(line) => {
                    *line_no += 1;
                    Ok(line?)
                }
                None => Err(SeqError::Parse {
                    line: *line_no,
                    msg: format!("truncated record: missing {what}"),
                }),
            }
        };
        while let Some(line) = lines.next() {
            line_no += 1;
            let header = line?;
            if header.trim().is_empty() {
                continue;
            }
            if !header.starts_with('@') {
                return Err(SeqError::Parse {
                    line: line_no,
                    msg: format!("expected '@' header, got {header:?}"),
                });
            }
            let seq = next_line(&mut lines, &mut line_no, "sequence line")?;
            validate_sequence_line(seq.as_bytes(), line_no)?;
            let plus = next_line(&mut lines, &mut line_no, "'+' separator line")?;
            if !plus.starts_with('+') {
                return Err(SeqError::Parse {
                    line: line_no,
                    msg: format!("expected '+' separator, got {plus:?}"),
                });
            }
            let qual = next_line(&mut lines, &mut line_no, "quality line")?;
            if qual.len() != seq.len() {
                return Err(SeqError::Parse {
                    line: line_no,
                    msg: format!(
                        "quality length {} != sequence length {} for {header:?}",
                        qual.len(),
                        seq.len()
                    ),
                });
            }
            records.push(FastxRecord::new_fastq(
                header[1..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("")
                    .to_string(),
                seq.into_bytes(),
                qual.into_bytes(),
            ));
        }
        Ok(ReadSet { records })
    }

    /// Parses FASTA from a buffered reader (multi-line sequences supported).
    ///
    /// Malformed input — sequence data before the first header, or a sequence
    /// character outside `ACGTN` (case-insensitive) — is reported as
    /// [`SeqError::Parse`] with the 1-based line number, never a panic.
    pub fn read_fasta<R: BufRead>(reader: R) -> Result<ReadSet, SeqError> {
        let mut records: Vec<FastxRecord> = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line_no = i + 1;
            let line = line?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(name) = trimmed.strip_prefix('>') {
                records.push(FastxRecord::new_fasta(
                    name.split_whitespace().next().unwrap_or("").to_string(),
                    Vec::new(),
                ));
            } else {
                let rec = records.last_mut().ok_or_else(|| SeqError::Parse {
                    line: line_no,
                    msg: "sequence data before first '>' header".into(),
                })?;
                validate_sequence_line(trimmed.as_bytes(), line_no)?;
                rec.seq.extend_from_slice(trimmed.as_bytes());
            }
        }
        Ok(ReadSet { records })
    }

    /// Writes the records as FASTQ. Records without qualities get `I` quality
    /// characters.
    pub fn write_fastq<W: Write>(&self, mut writer: W) -> Result<(), SeqError> {
        for r in &self.records {
            writer.write_all(b"@")?;
            writer.write_all(r.id.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.write_all(&r.seq)?;
            writer.write_all(b"\n+\n")?;
            if r.qual.len() == r.seq.len() {
                writer.write_all(&r.qual)?;
            } else {
                writer.write_all(&vec![b'I'; r.seq.len()])?;
            }
            writer.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Writes the records as FASTA with 70-column wrapping.
    pub fn write_fasta<W: Write>(&self, mut writer: W) -> Result<(), SeqError> {
        for r in &self.records {
            writer.write_all(b">")?;
            writer.write_all(r.id.as_bytes())?;
            writer.write_all(b"\n")?;
            for chunk in r.seq.chunks(70) {
                writer.write_all(chunk)?;
                writer.write_all(b"\n")?;
            }
        }
        Ok(())
    }
}

/// Rejects sequence characters outside `ACGTN` (case-insensitive). `N`s are
/// legal input — the DBG construction treats them as break points — but
/// anything else (e.g. a stray `-`, digit, or shifted-column garbage from a
/// corrupt file) is a parse error, reported with the offending character and
/// its 1-based line number.
fn validate_sequence_line(seq: &[u8], line_no: usize) -> Result<(), SeqError> {
    for &c in seq {
        let ok = crate::Base::from_ascii_checked(c).is_some() || c == b'N' || c == b'n';
        if !ok {
            return Err(SeqError::Parse {
                line: line_no,
                msg: format!("invalid sequence character {:?}", c as char),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fastq_roundtrip() {
        let input = "@read1 extra info\nACGTN\n+\nIIIII\n@read2\nTTTT\n+anything\nJJJJ\n";
        let rs = ReadSet::read_fastq(Cursor::new(input)).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.records[0].id, "read1");
        assert_eq!(rs.records[0].seq, b"ACGTN");
        assert_eq!(rs.records[0].qual, b"IIIII");
        assert_eq!(rs.records[1].id, "read2");
        let mut out = Vec::new();
        rs.write_fastq(&mut out).unwrap();
        let reparsed = ReadSet::read_fastq(Cursor::new(out)).unwrap();
        assert_eq!(reparsed, rs);
    }

    #[test]
    fn fastq_malformed_inputs() {
        assert!(ReadSet::read_fastq(Cursor::new("ACGT\n")).is_err());
        assert!(ReadSet::read_fastq(Cursor::new("@r\nACGT\n")).is_err());
        assert!(ReadSet::read_fastq(Cursor::new("@r\nACGT\nX\nIIII\n")).is_err());
        assert!(ReadSet::read_fastq(Cursor::new("@r\nACGT\n+\nII\n")).is_err());
        assert!(ReadSet::read_fastq(Cursor::new("")).unwrap().is_empty());
    }

    #[test]
    fn fastq_errors_carry_line_context() {
        // Truncated record: the header on line 5 has no sequence line.
        let e = ReadSet::read_fastq(Cursor::new("@r1\nACGT\n+\nIIII\n@r2\n")).unwrap_err();
        assert!(
            matches!(e, SeqError::Parse { line: 5, ref msg } if msg.contains("sequence line")),
            "{e}"
        );
        // Quality line on line 4 shorter than the sequence.
        let e = ReadSet::read_fastq(Cursor::new("@r\nACGT\n+\nII\n")).unwrap_err();
        assert!(matches!(e, SeqError::Parse { line: 4, .. }), "{e}");
        // Non-ACGTN character on the sequence line (line 2).
        let e = ReadSet::read_fastq(Cursor::new("@r\nAC-T\n+\nIIII\n")).unwrap_err();
        assert!(
            matches!(e, SeqError::Parse { line: 2, ref msg } if msg.contains('-')),
            "{e}"
        );
        // Missing '+' separator on line 3.
        let e = ReadSet::read_fastq(Cursor::new("@r\nACGT\nIIII\n")).unwrap_err();
        assert!(matches!(e, SeqError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn fastq_accepts_n_and_lowercase() {
        let rs = ReadSet::read_fastq(Cursor::new("@r\nacgtN\n+\nIIIII\n")).unwrap();
        assert_eq!(rs.records[0].seq, b"acgtN");
    }

    #[test]
    fn fasta_errors_carry_line_context() {
        let e = ReadSet::read_fasta(Cursor::new("ACGT\n")).unwrap_err();
        assert!(matches!(e, SeqError::Parse { line: 1, .. }), "{e}");
        // Second sequence line of the record (line 3) has a bad character.
        let e = ReadSet::read_fasta(Cursor::new(">c\nACGT\nAC!T\n")).unwrap_err();
        assert!(
            matches!(e, SeqError::Parse { line: 3, ref msg } if msg.contains('!')),
            "{e}"
        );
    }

    #[test]
    fn fasta_roundtrip_with_wrapping() {
        let seq = "ACGT".repeat(40); // 160 bases, wraps over 3 lines
        let rs = ReadSet::from_records(vec![
            FastxRecord::new_fasta("contig_1", seq.clone().into_bytes()),
            FastxRecord::new_fasta("contig_2", b"TTTT".to_vec()),
        ]);
        let mut out = Vec::new();
        rs.write_fasta(&mut out).unwrap();
        let reparsed = ReadSet::read_fasta(Cursor::new(out)).unwrap();
        assert_eq!(reparsed.records[0].seq, seq.into_bytes());
        assert_eq!(reparsed.records[1].id, "contig_2");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        assert!(ReadSet::read_fasta(Cursor::new("ACGT\n")).is_err());
    }

    #[test]
    fn acgt_segments_split_on_n() {
        let r = FastxRecord::new_fasta("r", b"ACGNNTTGCaNxGG".to_vec());
        let segs = r.acgt_segments();
        let segs: Vec<&str> = segs
            .iter()
            .map(|s| std::str::from_utf8(s).unwrap())
            .collect();
        assert_eq!(segs, vec!["ACG", "TTGCa", "GG"]);
        let clean = FastxRecord::new_fasta("r", b"ACGT".to_vec());
        assert_eq!(clean.acgt_segments().len(), 1);
        let all_n = FastxRecord::new_fasta("r", b"NNNN".to_vec());
        assert!(all_n.acgt_segments().is_empty());
    }

    #[test]
    fn read_set_statistics() {
        let rs = ReadSet::from_records(vec![
            FastxRecord::new_fasta("a", b"ACGT".to_vec()),
            FastxRecord::new_fasta("b", b"ACGTACGT".to_vec()),
        ]);
        assert_eq!(rs.total_bases(), 12);
        assert!((rs.mean_read_length() - 6.0).abs() < 1e-12);
        assert_eq!(ReadSet::new().mean_read_length(), 0.0);
        assert!(!rs.records[0].is_empty());
        assert_eq!(rs.records[1].len(), 8);
    }
}
