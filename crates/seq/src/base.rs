//! The four-letter DNA alphabet with the paper's 2-bit encoding.
//!
//! The paper (Section IV-A, Figure 7a) encodes each nucleotide with two bits:
//! `A = 00`, `C = 01`, `G = 10`, `T = 11`. This module provides that encoding,
//! complementation (`A↔T`, `C↔G`) and conversions to and from ASCII.

use crate::SeqError;
use serde::{Deserialize, Serialize};

/// A single DNA nucleotide.
///
/// The discriminant values are exactly the 2-bit codes used throughout the
/// assembler's packed representations, so `base as u8` / [`Base::from_code`]
/// are the canonical conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code `00`).
    A = 0b00,
    /// Cytosine (code `01`).
    C = 0b01,
    /// Guanine (code `10`).
    G = 0b10,
    /// Thymine (code `11`).
    T = 0b11,
}

/// All four bases in code order, convenient for iteration when enumerating the
/// possible neighbours of a k-mer.
pub const ALL_BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

impl Base {
    /// Decodes a 2-bit code (only the two low bits are observed).
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0b00 => Base::A,
            0b01 => Base::C,
            0b10 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The Watson–Crick complement (`A↔T`, `C↔G`).
    ///
    /// With the chosen encoding the complement is simply the bitwise negation
    /// of the 2-bit code, which is what makes reverse-complementing packed
    /// k-mers cheap.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(!self.code())
    }

    /// Parses an ASCII nucleotide. Lower-case is accepted. `N` (or any other
    /// IUPAC ambiguity code) is *not* a valid [`Base`]; callers that need to
    /// handle `N` should use [`Base::from_ascii_checked`] and treat `None` as a
    /// break point, as DBG construction does.
    #[inline]
    pub fn from_ascii(c: u8) -> Result<Base, SeqError> {
        Base::from_ascii_checked(c).ok_or(SeqError::InvalidBase(c as char))
    }

    /// Like [`Base::from_ascii`] but returns `None` instead of an error, which
    /// is convenient when splitting reads on `N` characters.
    #[inline]
    pub fn from_ascii_checked(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// The upper-case ASCII character for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// The upper-case `char` for this base.
    #[inline]
    pub fn to_char(self) -> char {
        self.to_ascii() as char
    }

    /// Whether this base is G or C (used for GC-content statistics).
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Parses an ASCII DNA string into bases, rejecting any non-ACGT character.
pub fn parse_bases(s: &str) -> Result<Vec<Base>, SeqError> {
    s.bytes().map(Base::from_ascii).collect()
}

/// Renders a slice of bases as an ASCII string.
pub fn bases_to_string(bases: &[Base]) -> String {
    bases.iter().map(|b| b.to_char()).collect()
}

/// Reverse-complements a slice of bases into a new vector.
pub fn reverse_complement(bases: &[Base]) -> Vec<Base> {
    bases.iter().rev().map(|b| b.complement()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_paper() {
        assert_eq!(Base::A.code(), 0b00);
        assert_eq!(Base::C.code(), 0b01);
        assert_eq!(Base::G.code(), 0b10);
        assert_eq!(Base::T.code(), 0b11);
    }

    #[test]
    fn from_code_roundtrip() {
        for code in 0u8..4 {
            assert_eq!(Base::from_code(code).code(), code);
        }
        // Only the low two bits matter.
        assert_eq!(Base::from_code(0b0100), Base::A);
        assert_eq!(Base::from_code(0b111), Base::T);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::T.complement(), Base::A);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
        for b in ALL_BASES {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn ascii_roundtrip() {
        for b in ALL_BASES {
            assert_eq!(Base::from_ascii(b.to_ascii()).unwrap(), b);
            assert_eq!(
                Base::from_ascii(b.to_ascii().to_ascii_lowercase()).unwrap(),
                b
            );
        }
        assert!(Base::from_ascii(b'N').is_err());
        assert!(Base::from_ascii_checked(b'N').is_none());
        assert!(Base::from_ascii(b'-').is_err());
    }

    #[test]
    fn parse_and_render() {
        let bases = parse_bases("ATTGCAAGT").unwrap();
        assert_eq!(bases.len(), 9);
        assert_eq!(bases_to_string(&bases), "ATTGCAAGT");
        assert!(parse_bases("ATTNGC").is_err());
    }

    #[test]
    fn reverse_complement_of_strand1_is_strand2() {
        // Figure 3 of the paper: strand 1 = ATTGCAAGTC, strand 2 (5'→3') = GACTTGCAAT.
        let strand1 = parse_bases("ATTGCAAGTC").unwrap();
        let rc = reverse_complement(&strand1);
        assert_eq!(bases_to_string(&rc), "GACTTGCAAT");
    }

    #[test]
    fn gc_detection() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn display_formats_as_letter() {
        assert_eq!(
            format!("{}{}{}{}", Base::A, Base::C, Base::G, Base::T),
            "ACGT"
        );
    }
}
