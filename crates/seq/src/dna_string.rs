//! Arbitrary-length 2-bit packed DNA sequences.
//!
//! Contigs (Figure 9) and reference genomes can be far longer than 31 bases,
//! so they cannot live in a single `u64` like a [`Kmer`]. A
//! [`DnaString`] stores the sequence as a vector of 64-bit words, 32 bases per
//! word, using the same 2-bit code (`A=00`, `C=01`, `G=10`, `T=11`). This is
//! the "variable-length bitmap" that a contig vertex keeps as its sequence in
//! the paper.

use crate::base::Base;
use crate::kernels;
use crate::kmer::{Kmer, MAX_K};
use crate::SeqError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

const BASES_PER_WORD: usize = 32;

/// Reverses the 32 two-bit base slots of a word and complements each base
/// (complement is bitwise NOT under the 2-bit code) — the whole-word building
/// block of the word-parallel [`DnaString::reverse_complement`].
#[inline]
fn rc_word(w: u64) -> u64 {
    let mut x = !w;
    x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
    x = ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    x.swap_bytes()
}

/// A 2-bit packed DNA sequence of arbitrary length.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DnaString {
    words: Vec<u64>,
    len: usize,
}

impl DnaString {
    /// Creates an empty sequence.
    pub fn new() -> DnaString {
        DnaString::default()
    }

    /// Creates an empty sequence with capacity for `n` bases.
    pub fn with_capacity(n: usize) -> DnaString {
        DnaString {
            words: Vec::with_capacity(n.div_ceil(BASES_PER_WORD)),
            len: 0,
        }
    }

    /// Builds a sequence from a slice of bases.
    pub fn from_bases(bases: &[Base]) -> DnaString {
        Self::from_bases_iter(bases.iter().copied())
    }

    /// Builds a sequence from an iterator of bases.
    pub fn from_bases_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaString {
        let iter = iter.into_iter();
        let mut s = DnaString::with_capacity(iter.size_hint().0);
        for b in iter {
            s.push(b);
        }
        s
    }

    /// Parses an ASCII `ACGT` string (case-insensitive); rejects `N`.
    pub fn from_ascii(s: &str) -> Result<DnaString, SeqError> {
        let mut out = DnaString::with_capacity(s.len());
        for c in s.bytes() {
            out.push(Base::from_ascii(c)?);
        }
        Ok(out)
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, b: Base) {
        let (word, offset) = (self.len / BASES_PER_WORD, self.len % BASES_PER_WORD);
        if offset == 0 {
            self.words.push(0);
        }
        // Store bases left-to-right within a word, two bits each, from the
        // high end so that word-level comparison follows sequence order.
        let shift = 62 - 2 * offset;
        self.words[word] |= (b.code() as u64) << shift;
        self.len += 1;
    }

    /// The base at position `i` (0-based). Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        let (word, offset) = (i / BASES_PER_WORD, i % BASES_PER_WORD);
        let shift = 62 - 2 * offset;
        Base::from_code((self.words[word] >> shift) as u8)
    }

    /// Iterates over bases from left to right.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Appends every base of `other`.
    ///
    /// Word-parallel: the incoming packed words are spliced onto the partial
    /// last word with two shifts each (32 bases per step) instead of a
    /// base-by-base push loop — contig concatenation is a hot path of the
    /// merging phase. The scalar twin runs when
    /// [`kernels::scalar_kernels_forced`] is engaged.
    pub fn extend_from(&mut self, other: &DnaString) {
        if kernels::scalar_kernels_forced() {
            for b in other.iter() {
                self.push(b);
            }
            return;
        }
        if other.len == 0 {
            return;
        }
        let m2 = (self.len % BASES_PER_WORD) * 2;
        if m2 == 0 {
            // Word-aligned append: a straight copy.
            self.words.extend_from_slice(&other.words);
        } else {
            for &w in &other.words {
                let last = self.words.last_mut().expect("partial last word");
                *last |= w >> m2;
                self.words.push(w << (64 - m2));
            }
        }
        self.len += other.len;
        // The splice pushes one word per incoming word, which can overshoot
        // the needed count by one; the dropped word only ever holds spill
        // from the incoming zero tail, so truncation keeps the trailing-
        // bits-zero invariant.
        self.words.truncate(self.len.div_ceil(BASES_PER_WORD));
        debug_assert!(self.tail_bits_zero());
    }

    /// Whether every bit past the last base is zero (the structural-`Eq`
    /// invariant; debug checks only).
    fn tail_bits_zero(&self) -> bool {
        let tail = self.len % BASES_PER_WORD;
        tail == 0 || self.words[self.words.len() - 1] & (u64::MAX >> (2 * tail)) == 0
    }

    /// Appends bases from a slice.
    pub fn extend_from_bases(&mut self, bases: &[Base]) {
        for &b in bases {
            self.push(b);
        }
    }

    /// Returns the sub-sequence `[start, start+len)` as a new `DnaString`.
    pub fn substring(&self, start: usize, len: usize) -> DnaString {
        assert!(start + len <= self.len, "substring out of range");
        DnaString::from_bases_iter((start..start + len).map(|i| self.get(i)))
    }

    /// The reverse complement of the whole sequence.
    ///
    /// Word-parallel: each word reverses and complements all 32 of its base
    /// slots at once (`rc_word`, the same SWAR network as
    /// [`Kmer::reverse_complement`]); the mapped words stream in reverse
    /// order and one whole-stream shift drops the pad that the partial last
    /// word contributes at the front. The scalar twin runs when
    /// [`kernels::scalar_kernels_forced`] is engaged.
    pub fn reverse_complement(&self) -> DnaString {
        if kernels::scalar_kernels_forced() {
            return DnaString::from_bases_iter(
                (0..self.len).rev().map(|i| self.get(i).complement()),
            );
        }
        let mut words: Vec<u64> = self.words.iter().rev().map(|&w| rc_word(w)).collect();
        // A partial last word's zero pad is complemented and reversed to the
        // front of the new stream; shift the whole stream left to drop it
        // (zeros fill from the right, preserving the tail invariant).
        let pad = (BASES_PER_WORD - self.len % BASES_PER_WORD) % BASES_PER_WORD * 2;
        if pad > 0 {
            let m = words.len();
            for i in 0..m - 1 {
                words[i] = (words[i] << pad) | (words[i + 1] >> (64 - pad));
            }
            words[m - 1] <<= pad;
        }
        let out = DnaString {
            words,
            len: self.len,
        };
        debug_assert!(out.tail_bits_zero());
        out
    }

    /// The lexicographically smaller of this sequence and its reverse
    /// complement (one word-parallel [`Ord`] comparison, no decoding).
    pub fn canonical(&self) -> DnaString {
        let rc = self.reverse_complement();
        if *self <= rc {
            self.clone()
        } else {
            rc
        }
    }

    /// Returns all bases as a vector.
    pub fn to_bases(&self) -> Vec<Base> {
        self.iter().collect()
    }

    /// Renders the sequence as an ASCII string.
    pub fn to_ascii(&self) -> String {
        self.iter().map(|b| b.to_char()).collect()
    }

    /// The k-mer starting at position `i`. Requires `k ≤ 31`.
    pub fn kmer_at(&self, i: usize, k: usize) -> Result<Kmer, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        if i + k > self.len {
            return Err(SeqError::SequenceTooShort {
                required: i + k,
                actual: self.len,
            });
        }
        Kmer::from_bases(&(i..i + k).map(|j| self.get(j)).collect::<Vec<_>>())
    }

    /// Iterates over all k-mers of the sequence, left to right.
    pub fn kmers(&self, k: usize) -> impl Iterator<Item = Kmer> + '_ {
        let valid = (1..=MAX_K).contains(&k) && self.len >= k;
        let mut current = if valid { self.kmer_at(0, k).ok() } else { None };
        let mut next = k;
        std::iter::from_fn(move || {
            let out = current?;
            current = if next < self.len {
                let n = out.extend_right(self.get(next));
                next += 1;
                Some(n)
            } else {
                None
            };
            Some(out)
        })
    }

    /// Fraction of bases that are G or C, in `[0, 1]`. Returns 0 for an empty
    /// sequence.
    pub fn gc_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let gc = self.iter().filter(|b| b.is_gc()).count();
        gc as f64 / self.len as f64
    }

    /// Counts occurrences of each base, returned in `[A, C, G, T]` order.
    pub fn base_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for b in self.iter() {
            counts[b.code() as usize] += 1;
        }
        counts
    }

    /// The packed 2-bit words backing the sequence, 32 bases per word from the
    /// high end. Exposed for serialization (checkpointing).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a sequence from packed words and a base count, validating the
    /// invariants [`DnaString::words`] guarantees: exactly
    /// `len.div_ceil(32)` words, and every bit past the last base zero (so
    /// that `Eq`/`Hash` remain structural). Malformed input — e.g. a
    /// truncated or corrupted checkpoint — is rejected with
    /// [`SeqError::MalformedRecord`], never a panic.
    pub fn from_raw_parts(words: Vec<u64>, len: usize) -> Result<DnaString, SeqError> {
        if words.len() != len.div_ceil(BASES_PER_WORD) {
            return Err(SeqError::MalformedRecord(format!(
                "DnaString of {len} bases needs {} words, got {}",
                len.div_ceil(BASES_PER_WORD),
                words.len()
            )));
        }
        let tail = len % BASES_PER_WORD;
        if tail != 0 {
            let mask = u64::MAX >> (2 * tail);
            if words[words.len() - 1] & mask != 0 {
                return Err(SeqError::MalformedRecord(
                    "DnaString trailing bits past the last base are not zero".into(),
                ));
            }
        }
        Ok(DnaString { words, len })
    }
}

impl Ord for DnaString {
    /// Lexicographic base order, compared **word-parallel**: bases pack from
    /// the high end of each word with every bit past the last base zero, so
    /// lexicographic comparison of the word vectors *is* lexicographic
    /// comparison of the sequences — 32 bases per compare. Two sequences
    /// with equal word vectors can still differ in length (the shorter one's
    /// missing bases read as the zero pad, i.e. `A`s), in which case the
    /// shorter — a strict prefix — sorts first. The scalar twin runs when
    /// [`kernels::scalar_kernels_forced`] is engaged.
    fn cmp(&self, other: &DnaString) -> Ordering {
        if kernels::scalar_kernels_forced() {
            for (a, b) in self.iter().zip(other.iter()) {
                match a.code().cmp(&b.code()) {
                    Ordering::Equal => {}
                    o => return o,
                }
            }
            return self.len.cmp(&other.len);
        }
        self.words.cmp(&other.words).then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for DnaString {
    fn partial_cmp(&self, other: &DnaString) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "DnaString({}, len={})", self, self.len)
        } else {
            write!(
                f,
                "DnaString({}...{}, len={})",
                self.substring(0, 24),
                self.substring(self.len - 24, 24),
                self.len
            )
        }
    }
}

impl FromIterator<Base> for DnaString {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        DnaString::from_bases_iter(iter)
    }
}

impl From<Kmer> for DnaString {
    fn from(k: Kmer) -> Self {
        k.to_dna_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_get_roundtrip() {
        let mut s = DnaString::new();
        assert!(s.is_empty());
        for (i, c) in "ACGTTGCAACGT".chars().enumerate() {
            s.push(Base::from_ascii(c as u8).unwrap());
            assert_eq!(s.len(), i + 1);
        }
        assert_eq!(s.to_ascii(), "ACGTTGCAACGT");
        assert_eq!(s.get(0), Base::A);
        assert_eq!(s.get(11), Base::T);
    }

    #[test]
    fn crosses_word_boundary() {
        let src: String = "ACGT".repeat(20); // 80 bases, > 2 words
        let s = DnaString::from_ascii(&src).unwrap();
        assert_eq!(s.len(), 80);
        assert_eq!(s.to_ascii(), src);
        assert_eq!(s.get(33), Base::C);
        assert_eq!(s.get(64), Base::A);
    }

    #[test]
    fn from_ascii_rejects_n() {
        assert!(DnaString::from_ascii("ACGNT").is_err());
    }

    #[test]
    fn substring_and_extend() {
        let s = DnaString::from_ascii("ATTGCAAGTC").unwrap();
        assert_eq!(s.substring(2, 4).to_ascii(), "TGCA");
        let mut t = s.substring(0, 3);
        t.extend_from(&s.substring(3, 7));
        assert_eq!(t.to_ascii(), s.to_ascii());
        let mut u = DnaString::new();
        u.extend_from_bases(&s.to_bases());
        assert_eq!(u, s);
    }

    #[test]
    #[should_panic(expected = "substring out of range")]
    fn substring_out_of_range_panics() {
        let s = DnaString::from_ascii("ACGT").unwrap();
        let _ = s.substring(2, 10);
    }

    #[test]
    fn reverse_complement_matches_paper() {
        // Strand 1 "ATTGCAAGTC" → strand 2 read 5'→3' is "GACTTGCAAT".
        let s = DnaString::from_ascii("ATTGCAAGTC").unwrap();
        assert_eq!(s.reverse_complement().to_ascii(), "GACTTGCAAT");
    }

    #[test]
    fn canonical_of_string() {
        let s = DnaString::from_ascii("GT").unwrap();
        assert_eq!(s.canonical().to_ascii(), "AC");
        let t = DnaString::from_ascii("AC").unwrap();
        assert_eq!(t.canonical().to_ascii(), "AC");
    }

    #[test]
    fn kmers_iteration() {
        let s = DnaString::from_ascii("ATTGCAAGT").unwrap();
        let kmers: Vec<String> = s.kmers(3).map(|k| k.to_string()).collect();
        assert_eq!(kmers, vec!["ATT", "TTG", "TGC", "GCA", "CAA", "AAG", "AGT"]);
        assert_eq!(s.kmers(20).count(), 0);
        assert!(s.kmer_at(0, 0).is_err());
        assert!(s.kmer_at(8, 3).is_err());
        assert_eq!(s.kmer_at(6, 3).unwrap().to_string(), "AGT");
    }

    #[test]
    fn gc_fraction_and_counts() {
        let s = DnaString::from_ascii("GGCCAATT").unwrap();
        assert!((s.gc_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.base_counts(), [2, 2, 2, 2]);
        assert_eq!(DnaString::new().gc_fraction(), 0.0);
    }

    #[test]
    fn display_and_debug() {
        let s = DnaString::from_ascii("ACGT").unwrap();
        assert_eq!(format!("{s}"), "ACGT");
        assert!(format!("{s:?}").contains("len=4"));
        let long = DnaString::from_ascii(&"ACGT".repeat(50)).unwrap();
        assert!(format!("{long:?}").contains("len=200"));
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        for src in ["", "A", "ACGTTGCA", &"ACGT".repeat(20)] {
            let s = DnaString::from_ascii(src).unwrap();
            let rebuilt = DnaString::from_raw_parts(s.words().to_vec(), s.len()).unwrap();
            assert_eq!(rebuilt, s);
        }
        // Word-count mismatch.
        assert!(DnaString::from_raw_parts(vec![0], 0).is_err());
        assert!(DnaString::from_raw_parts(vec![], 1).is_err());
        // Non-zero bits past the last base would break structural Eq.
        assert!(DnaString::from_raw_parts(vec![1], 1).is_err());
        assert!(DnaString::from_raw_parts(vec![0b11 << 62], 1).is_ok());
    }

    #[test]
    fn from_kmer_conversion() {
        let k = Kmer::from_str_exact("TGCCG").unwrap();
        let s: DnaString = k.into();
        assert_eq!(s.to_ascii(), "TGCCG");
    }

    /// Runs `f` with the scalar twins forced; serialized so concurrent
    /// pinning tests cannot release the switch under each other.
    fn with_forced_scalar<T>(f: impl FnOnce() -> T) -> T {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        struct Release;
        impl Drop for Release {
            fn drop(&mut self) {
                kernels::force_scalar_kernels(false);
            }
        }
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _release = Release;
        kernels::force_scalar_kernels(true);
        f()
    }

    #[test]
    fn word_kernels_match_scalar_at_boundaries() {
        // Lengths straddling every word-boundary shape: empty, sub-word,
        // exact words, one base over/under.
        for n in [0usize, 1, 31, 32, 33, 63, 64, 65, 96] {
            let s = DnaString::from_bases_iter((0..n).map(|i| Base::from_code((i % 4) as u8)));
            let t = DnaString::from_bases_iter((0..n).map(|i| Base::from_code((i % 3) as u8)));
            let (rc, canon, cmp, ext) = with_forced_scalar(|| {
                let mut e = s.clone();
                e.extend_from(&t);
                (s.reverse_complement(), s.canonical(), s.cmp(&t), e)
            });
            assert_eq!(s.reverse_complement(), rc, "rc len {n}");
            assert_eq!(s.canonical(), canon, "canonical len {n}");
            assert_eq!(s.cmp(&t), cmp, "cmp len {n}");
            let mut e = s.clone();
            e.extend_from(&t);
            assert_eq!(e, ext, "extend len {n}");
        }
    }

    #[test]
    fn ord_is_lexicographic_over_bases() {
        // Prefix, mid-word difference, cross-word difference, zero-pad-as-A
        // tie broken by length.
        let pairs = [
            ("A", "AA"),
            ("AC", "C"),
            ("CA", "CAA"),
            ("CAAC", "CAT"),
            (&"ACGT".repeat(16)[..], &("ACGT".repeat(16) + "A")[..]),
        ];
        for (a, b) in pairs {
            let s = DnaString::from_ascii(a).unwrap();
            let t = DnaString::from_ascii(b).unwrap();
            assert_eq!(s.cmp(&t), a.cmp(b), "{a} vs {b}");
            assert_eq!(t.cmp(&s), b.cmp(a), "{b} vs {a}");
        }
    }

    proptest! {
        #[test]
        fn prop_word_kernels_match_scalar(
            a in proptest::collection::vec(0u8..4, 0..220),
            b in proptest::collection::vec(0u8..4, 0..220),
        ) {
            let s = DnaString::from_bases_iter(a.iter().map(|c| Base::from_code(*c)));
            let t = DnaString::from_bases_iter(b.iter().map(|c| Base::from_code(*c)));
            let (rc, canon, cmp, ext) = with_forced_scalar(|| {
                let mut e = s.clone();
                e.extend_from(&t);
                (s.reverse_complement(), s.canonical(), s.cmp(&t), e)
            });
            prop_assert_eq!(s.reverse_complement(), rc);
            prop_assert_eq!(s.canonical(), canon);
            prop_assert_eq!(s.cmp(&t), cmp);
            let mut e = s.clone();
            e.extend_from(&t);
            prop_assert_eq!(e, ext);
            // Independent oracle: with A<C<G<T mapping to ASCII order,
            // sequence order must equal string order.
            prop_assert_eq!(s.cmp(&t), s.to_ascii().cmp(&t.to_ascii()));
        }

        #[test]
        fn prop_ascii_roundtrip(v in proptest::collection::vec(0u8..4, 0..300)) {
            let bases: Vec<Base> = v.iter().map(|c| Base::from_code(*c)).collect();
            let s = DnaString::from_bases(&bases);
            prop_assert_eq!(s.len(), bases.len());
            prop_assert_eq!(s.to_bases(), bases.clone());
            let parsed = DnaString::from_ascii(&s.to_ascii()).unwrap();
            prop_assert_eq!(parsed, s);
        }

        #[test]
        fn prop_rc_involution(v in proptest::collection::vec(0u8..4, 0..300)) {
            let s = DnaString::from_bases_iter(v.iter().map(|c| Base::from_code(*c)));
            prop_assert_eq!(s.reverse_complement().reverse_complement(), s);
        }

        #[test]
        fn prop_kmers_match_naive(v in proptest::collection::vec(0u8..4, 0..120), k in 1usize..32) {
            let bases: Vec<Base> = v.iter().map(|c| Base::from_code(*c)).collect();
            let s = DnaString::from_bases(&bases);
            let from_string: Vec<Kmer> = s.kmers(k).collect();
            let naive: Vec<Kmer> = crate::kmer::kmers_of(&bases, k).collect();
            prop_assert_eq!(from_string, naive);
        }

        #[test]
        fn prop_substring_concat(v in proptest::collection::vec(0u8..4, 1..200), cut in 0usize..200) {
            let bases: Vec<Base> = v.iter().map(|c| Base::from_code(*c)).collect();
            let s = DnaString::from_bases(&bases);
            let cut = cut.min(s.len());
            let mut joined = s.substring(0, cut);
            joined.extend_from(&s.substring(cut, s.len() - cut));
            prop_assert_eq!(joined, s);
        }
    }
}
