//! Packed k-mers (k ≤ 31) and canonicalisation.
//!
//! The paper encodes the sequence of a k-mer directly into a 64-bit integer
//! vertex ID (Figure 7a): each nucleotide takes two bits (`A=00`, `C=01`,
//! `G=10`, `T=11`), the packed sequence is aligned to the *right* of the word
//! (the last nucleotide occupies the two least-significant bits) and the
//! remaining high bits are zero. With k ≤ 31 at most 62 bits are used, leaving
//! the two most significant bits free for the NULL/contig markers and the
//! contig-end "flip" bit handled by the assembler crate.
//!
//! [`Kmer`] implements exactly this packing, plus the operations the assembler
//! needs: sliding-window extension, reverse complement, canonical form
//! (lexicographically smaller of the k-mer and its reverse complement,
//! Section III "Directionality") and prefix/suffix extraction of a (k+1)-mer.

use crate::base::{Base, ALL_BASES};
use crate::{DnaString, SeqError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported k (the sequence must fit in a `u64`).
///
/// K-mer *vertices* of the assembler are limited to k ≤ 31 so that the top two
/// bits of the 64-bit vertex ID stay free (Figure 7 of the paper); the value 32
/// is allowed here so that the (k+1)-mers extracted during DBG construction
/// with k = 31 can still be represented as packed words.
pub const MAX_K: usize = 32;

/// Orientation of a k-mer occurrence relative to its canonical representative.
///
/// The paper calls the canonical orientation label `L` and the
/// reverse-complemented orientation label `H` (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Orientation {
    /// The k-mer as observed equals the canonical (lexicographically smaller) form.
    Forward,
    /// The k-mer as observed is the reverse complement of the canonical form.
    ReverseComplement,
}

impl Orientation {
    /// The complementary label (`L̄ = H`, `H̄ = L` in the paper's notation).
    #[inline]
    pub fn flip(self) -> Orientation {
        match self {
            Orientation::Forward => Orientation::ReverseComplement,
            Orientation::ReverseComplement => Orientation::Forward,
        }
    }

    /// Single-character debug label matching the paper (`L` / `H`).
    #[inline]
    pub fn label(self) -> char {
        match self {
            Orientation::Forward => 'L',
            Orientation::ReverseComplement => 'H',
        }
    }
}

/// A k-mer (1 ≤ k ≤ 31) packed into a `u64` using the paper's 2-bit encoding.
///
/// The packing is right-aligned: the most recently pushed (right-most) base
/// occupies bits 1..0, and the left-most base occupies bits `2k-1..2k-2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Creates the empty 0-mer used as a builder seed. Not a valid DBG vertex.
    #[inline]
    pub fn empty(k: usize) -> Result<Kmer, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        Ok(Kmer {
            packed: 0,
            k: k as u8,
        })
    }

    /// Builds a k-mer from a slice of bases; `bases.len()` defines k.
    pub fn from_bases(bases: &[Base]) -> Result<Kmer, SeqError> {
        if bases.is_empty() || bases.len() > MAX_K {
            return Err(SeqError::InvalidK(bases.len()));
        }
        let mut packed = 0u64;
        for b in bases {
            packed = (packed << 2) | b.code() as u64;
        }
        Ok(Kmer {
            packed,
            k: bases.len() as u8,
        })
    }

    /// Parses a k-mer from an ASCII string of `A`/`C`/`G`/`T`.
    pub fn from_str_exact(s: &str) -> Result<Kmer, SeqError> {
        let bases = crate::base::parse_bases(s)?;
        Kmer::from_bases(&bases)
    }

    /// Reconstructs a k-mer from its packed 2-bit representation.
    ///
    /// Returns an error if `k` is out of range or if `packed` has bits set
    /// above position `2k`.
    pub fn from_packed(packed: u64, k: usize) -> Result<Kmer, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        let mask = Kmer::mask(k as u8);
        if k < 32 && packed & !mask != 0 {
            return Err(SeqError::MalformedRecord(format!(
                "packed k-mer value {packed:#x} has bits above 2k={}",
                2 * k
            )));
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    #[inline]
    fn mask(k: u8) -> u64 {
        if k as usize >= 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k as u32)) - 1
        }
    }

    /// The k of this k-mer.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2-bit representation (right-aligned, high bits zero).
    ///
    /// This is exactly the integer vertex ID of Figure 7(a) for k-mer vertices.
    #[inline]
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// The base at position `i` (0 = left-most).
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        debug_assert!(i < self.k());
        let shift = 2 * (self.k() - 1 - i);
        Base::from_code((self.packed >> shift) as u8)
    }

    /// The left-most (first) base.
    #[inline]
    pub fn first(&self) -> Base {
        self.get(0)
    }

    /// The right-most (last) base.
    #[inline]
    pub fn last(&self) -> Base {
        Base::from_code(self.packed as u8)
    }

    /// Iterates over the bases from left to right.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.k()).map(move |i| self.get(i))
    }

    /// Returns the bases as a vector (left to right).
    pub fn to_bases(&self) -> Vec<Base> {
        self.iter().collect()
    }

    /// Converts to a [`DnaString`].
    ///
    /// Word-level: the right-aligned packed representation left-aligns into
    /// the string's single word with one shift — no per-base decode.
    pub fn to_dna_string(&self) -> DnaString {
        let k = self.k();
        let word = if k == MAX_K {
            self.packed
        } else {
            self.packed << (64 - 2 * k)
        };
        DnaString::from_raw_parts(vec![word], k)
            .expect("a left-aligned packed k-mer is a valid one-word DnaString")
    }

    /// Slides the window one base to the right: drops the left-most base and
    /// appends `b` on the right. Used when cutting reads into consecutive
    /// k-mers (Figure 4).
    #[inline]
    pub fn extend_right(&self, b: Base) -> Kmer {
        let packed = ((self.packed << 2) | b.code() as u64) & Kmer::mask(self.k);
        Kmer { packed, k: self.k }
    }

    /// Slides the window one base to the left: drops the right-most base and
    /// prepends `b` on the left.
    #[inline]
    pub fn extend_left(&self, b: Base) -> Kmer {
        let packed = (self.packed >> 2) | ((b.code() as u64) << (2 * (self.k() - 1)));
        Kmer { packed, k: self.k }
    }

    /// Appends a base producing a (k+1)-mer. Panics in debug builds if the
    /// result would exceed [`MAX_K`].
    #[inline]
    pub fn append(&self, b: Base) -> Kmer {
        debug_assert!(self.k() < MAX_K);
        Kmer {
            packed: (self.packed << 2) | b.code() as u64,
            k: self.k + 1,
        }
    }

    /// The prefix of this k-mer with the last base removed (a (k−1)-mer).
    ///
    /// For a (k+1)-mer edge this yields the source vertex of the DBG edge.
    #[inline]
    pub fn prefix(&self) -> Kmer {
        debug_assert!(self.k() > 1);
        Kmer {
            packed: self.packed >> 2,
            k: self.k - 1,
        }
    }

    /// The suffix of this k-mer with the first base removed (a (k−1)-mer).
    ///
    /// For a (k+1)-mer edge this yields the target vertex of the DBG edge.
    #[inline]
    pub fn suffix(&self) -> Kmer {
        let k = self.k - 1;
        Kmer {
            packed: self.packed & Kmer::mask(k),
            k,
        }
    }

    /// The reverse complement of this k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        // Complement all bases (bitwise NOT under the 2-bit code), then reverse
        // the order of the 2-bit groups.
        let mut x = !self.packed;
        // Reverse 2-bit groups within the 64-bit word.
        x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
        x = ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
        x = x.swap_bytes();
        // The reversed groups are now left-aligned; shift right so that the
        // sequence is right-aligned again.
        let packed = (x >> (64 - 2 * self.k() as u32)) & Kmer::mask(self.k);
        Kmer { packed, k: self.k }
    }

    /// The canonical representative: the lexicographically smaller of this
    /// k-mer and its reverse complement (Section III, "Directionality").
    ///
    /// With the 2-bit encoding, lexicographic comparison of the sequences is
    /// identical to integer comparison of the packed values.
    pub fn canonical(&self) -> CanonicalKmer {
        let rc = self.reverse_complement();
        if self.packed <= rc.packed {
            CanonicalKmer {
                kmer: *self,
                orientation: Orientation::Forward,
            }
        } else {
            CanonicalKmer {
                kmer: rc,
                orientation: Orientation::ReverseComplement,
            }
        }
    }

    /// Whether this k-mer is already canonical.
    pub fn is_canonical(&self) -> bool {
        self.packed <= self.reverse_complement().packed
    }

    /// Whether this k-mer equals its own reverse complement (a palindrome);
    /// only possible for even k.
    pub fn is_palindrome(&self) -> bool {
        *self == self.reverse_complement()
    }

    /// All four k-mers obtainable by appending a base on the right and
    /// dropping the left-most base (the possible out-neighbours in a simple
    /// directed DBG, ignoring which ones actually occur in the reads).
    pub fn successors(&self) -> [Kmer; 4] {
        let mut out = [*self; 4];
        for (i, b) in ALL_BASES.iter().enumerate() {
            out[i] = self.extend_right(*b);
        }
        out
    }

    /// All four k-mers obtainable by prepending a base on the left.
    pub fn predecessors(&self) -> [Kmer; 4] {
        let mut out = [*self; 4];
        for (i, b) in ALL_BASES.iter().enumerate() {
            out[i] = self.extend_left(*b);
        }
        out
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer({}, k={})", self, self.k())
    }
}

/// A k-mer paired with the orientation that produced it.
///
/// `kmer` is always the canonical (lexicographically smaller) form;
/// `orientation` records whether the originally observed k-mer was already
/// canonical (`Forward`, label `L`) or had to be reverse-complemented
/// (`ReverseComplement`, label `H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanonicalKmer {
    /// The canonical k-mer.
    pub kmer: Kmer,
    /// Orientation of the observed k-mer relative to `kmer`.
    pub orientation: Orientation,
}

/// Incremental canonical k-mer scanner: maintains the packed forward word
/// *and* the packed reverse-complement word as bases stream in, so each
/// window's canonical form costs two shifts and a comparison instead of the
/// full [`Kmer::reverse_complement`] bit-reversal per window.
///
/// This is the hot inner loop of DBG construction (every base of every read
/// passes through it), which is why it works on raw 2-bit codes and never
/// materialises a `Kmer` until a window is complete:
///
/// ```
/// use ppa_seq::kmer::CanonicalScanner;
/// use ppa_seq::Base;
///
/// let mut scanner = CanonicalScanner::new(2).unwrap();
/// assert!(scanner.push(Base::G).is_none()); // window not yet full
/// let canon = scanner.push(Base::T).unwrap(); // window "GT" → canonical "AC"
/// assert_eq!(canon.kmer.to_string(), "AC");
/// ```
#[derive(Debug, Clone)]
pub struct CanonicalScanner {
    k: u8,
    mask: u64,
    /// Shift that places a complemented base at the high end of the rc word.
    rc_shift: u32,
    fwd: u64,
    rc: u64,
    filled: usize,
}

impl CanonicalScanner {
    /// Creates a scanner for windows of `k` bases (1 ≤ k ≤ [`MAX_K`]).
    pub fn new(k: usize) -> Result<CanonicalScanner, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        Ok(CanonicalScanner {
            k: k as u8,
            mask: Kmer::mask(k as u8),
            rc_shift: 2 * (k as u32 - 1),
            fwd: 0,
            rc: 0,
            filled: 0,
        })
    }

    /// Forgets the current window (call between read segments; the scanner
    /// must never slide across an `N` break).
    #[inline]
    pub fn reset(&mut self) {
        self.fwd = 0;
        self.rc = 0;
        self.filled = 0;
    }

    /// Slides the window one base to the right. Returns the canonical form of
    /// the window once (and as long as) `k` bases have been consumed since the
    /// last [`reset`](CanonicalScanner::reset).
    #[inline]
    pub fn push(&mut self, base: Base) -> Option<CanonicalKmer> {
        let code = base.code() as u64;
        self.fwd = ((self.fwd << 2) | code) & self.mask;
        // The complement of the incoming base enters the rc word at the high
        // end — the rc word always equals reverse_complement(fwd window).
        self.rc = (self.rc >> 2) | ((3 ^ code) << self.rc_shift);
        if self.filled + 1 < self.k as usize {
            self.filled += 1;
            return None;
        }
        self.filled = self.k as usize;
        let (packed, orientation) = if self.fwd <= self.rc {
            (self.fwd, Orientation::Forward)
        } else {
            (self.rc, Orientation::ReverseComplement)
        };
        Some(CanonicalKmer {
            kmer: Kmer { packed, k: self.k },
            orientation,
        })
    }
}

/// Iterates over the canonical form of every k-mer window of a base slice,
/// left to right, using the rolling [`CanonicalScanner`].
///
/// Returns an empty iterator if the sequence is shorter than `k` (or `k` is
/// out of range).
pub fn canonical_kmers_of(bases: &[Base], k: usize) -> impl Iterator<Item = CanonicalKmer> + '_ {
    let mut scanner = CanonicalScanner::new(k).ok();
    bases.iter().filter_map(move |&b| scanner.as_mut()?.push(b))
}

/// Iterates over all k-mers of a base slice, left to right.
///
/// Returns an empty iterator if the sequence is shorter than `k`.
pub fn kmers_of(bases: &[Base], k: usize) -> impl Iterator<Item = Kmer> + '_ {
    let valid = (1..=MAX_K).contains(&k) && bases.len() >= k;
    let mut current = if valid {
        Kmer::from_bases(&bases[..k]).ok()
    } else {
        None
    };
    let mut next_idx = k;
    std::iter::from_fn(move || {
        let out = current?;
        current = if next_idx < bases.len() {
            let n = out.extend_right(bases[next_idx]);
            next_idx += 1;
            Some(n)
        } else {
            None
        };
        Some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::parse_bases;
    use proptest::prelude::*;

    fn km(s: &str) -> Kmer {
        Kmer::from_str_exact(s).unwrap()
    }

    #[test]
    fn packing_matches_paper_figure7() {
        // Figure 7(a): 5-mer "ATTGC" = 00 11 11 10 01 right-aligned.
        let k = km("ATTGC");
        assert_eq!(k.packed(), 0b00_11_11_10_01);
        assert_eq!(k.k(), 5);
        assert_eq!(k.to_string(), "ATTGC");
    }

    #[test]
    fn from_packed_roundtrip_and_validation() {
        let k = km("ACGGT");
        let back = Kmer::from_packed(k.packed(), 5).unwrap();
        assert_eq!(k, back);
        assert!(Kmer::from_packed(1 << 63, 5).is_err());
        assert!(Kmer::from_packed(0, 0).is_err());
        assert!(Kmer::from_packed(0, 33).is_err());
        assert!(Kmer::from_packed(u64::MAX, 32).is_ok());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(Kmer::from_bases(&[]).is_err());
        let too_long = vec![Base::A; 33];
        assert!(Kmer::from_bases(&too_long).is_err());
        let max = vec![Base::T; 32];
        assert!(Kmer::from_bases(&max).is_ok());
        assert_eq!(
            Kmer::from_bases(&max)
                .unwrap()
                .reverse_complement()
                .to_string(),
            "A".repeat(32)
        );
    }

    #[test]
    fn get_first_last() {
        let k = km("ACGT");
        assert_eq!(k.get(0), Base::A);
        assert_eq!(k.get(1), Base::C);
        assert_eq!(k.get(2), Base::G);
        assert_eq!(k.get(3), Base::T);
        assert_eq!(k.first(), Base::A);
        assert_eq!(k.last(), Base::T);
    }

    #[test]
    fn extend_right_slides_window() {
        // Figure 4: read "ATTG" cut into 3-mers "ATT", "TTG".
        let first = km("ATT");
        let second = first.extend_right(Base::G);
        assert_eq!(second.to_string(), "TTG");
    }

    #[test]
    fn extend_left_slides_window() {
        let k = km("TTG");
        assert_eq!(k.extend_left(Base::A).to_string(), "ATT");
    }

    #[test]
    fn prefix_suffix_of_k_plus_1_mer() {
        // Figure 4: the 3-mer "ATT" defines an edge from "AT" to "TT".
        let e = km("ATT");
        assert_eq!(e.prefix().to_string(), "AT");
        assert_eq!(e.suffix().to_string(), "TT");
    }

    #[test]
    fn append_creates_k_plus_1_mer() {
        let k = km("AT");
        assert_eq!(k.append(Base::T).to_string(), "ATT");
    }

    #[test]
    fn reverse_complement_examples() {
        // Figure 6: "GT" and "AC" are reverse complements; "AAG" ↔ "CTT".
        assert_eq!(km("GT").reverse_complement().to_string(), "AC");
        assert_eq!(km("AC").reverse_complement().to_string(), "GT");
        assert_eq!(km("AAG").reverse_complement().to_string(), "CTT");
        assert_eq!(km("ACGGT").reverse_complement().to_string(), "ACCGT");
    }

    #[test]
    fn canonical_picks_smaller() {
        // "GT" vs rc "AC": canonical is "AC" (paper, Figure 6).
        let c = km("GT").canonical();
        assert_eq!(c.kmer.to_string(), "AC");
        assert_eq!(c.orientation, Orientation::ReverseComplement);
        let c2 = km("AC").canonical();
        assert_eq!(c2.kmer.to_string(), "AC");
        assert_eq!(c2.orientation, Orientation::Forward);
    }

    #[test]
    fn palindrome_detection() {
        assert!(km("ACGT").is_palindrome()); // rc(ACGT) = ACGT
        assert!(!km("AAA").is_palindrome());
    }

    #[test]
    fn successors_predecessors() {
        let k = km("CCG");
        let succ: Vec<String> = k.successors().iter().map(|s| s.to_string()).collect();
        assert_eq!(succ, vec!["CGA", "CGC", "CGG", "CGT"]);
        // Paper example (Section IV-A): 4-mer "CCGT" has possible in-neighbours
        // ACCG, CCCG, GCCG, TCCG.
        let k = km("CCGT");
        let mut preds: Vec<String> = k.predecessors().iter().map(|s| s.to_string()).collect();
        preds.sort();
        assert_eq!(preds, vec!["ACCG", "CCCG", "GCCG", "TCCG"]);
    }

    #[test]
    fn kmers_of_sequence() {
        let bases = parse_bases("ATTGCAAGT").unwrap();
        let kmers: Vec<String> = kmers_of(&bases, 3).map(|k| k.to_string()).collect();
        assert_eq!(kmers, vec!["ATT", "TTG", "TGC", "GCA", "CAA", "AAG", "AGT"]);
        assert_eq!(kmers_of(&bases, 10).count(), 0);
        assert_eq!(kmers_of(&bases, 9).count(), 1);
    }

    #[test]
    fn orientation_flip() {
        assert_eq!(Orientation::Forward.flip(), Orientation::ReverseComplement);
        assert_eq!(Orientation::ReverseComplement.flip(), Orientation::Forward);
        assert_eq!(Orientation::Forward.label(), 'L');
        assert_eq!(Orientation::ReverseComplement.label(), 'H');
    }

    #[test]
    fn scanner_matches_per_window_canonicalisation() {
        let bases = parse_bases("ATTGCAAGTCCGTAGGATC").unwrap();
        for k in [1usize, 2, 3, 5, 8] {
            let rolled: Vec<(u64, Orientation)> = canonical_kmers_of(&bases, k)
                .map(|c| (c.kmer.packed(), c.orientation))
                .collect();
            let naive: Vec<(u64, Orientation)> = kmers_of(&bases, k)
                .map(|w| {
                    let c = w.canonical();
                    (c.kmer.packed(), c.orientation)
                })
                .collect();
            assert_eq!(rolled, naive, "k = {k}");
        }
    }

    #[test]
    fn scanner_reset_restarts_the_window() {
        let mut scanner = CanonicalScanner::new(3).unwrap();
        assert!(scanner.push(Base::A).is_none());
        assert!(scanner.push(Base::C).is_none());
        scanner.reset();
        assert!(scanner.push(Base::G).is_none());
        assert!(scanner.push(Base::T).is_none());
        let c = scanner.push(Base::A).unwrap();
        assert_eq!(c.kmer, km("GTA").canonical().kmer);
    }

    #[test]
    fn scanner_rejects_invalid_k() {
        assert!(CanonicalScanner::new(0).is_err());
        assert!(CanonicalScanner::new(MAX_K + 1).is_err());
        assert!(CanonicalScanner::new(MAX_K).is_ok());
    }

    #[test]
    fn scanner_handles_max_k() {
        // 33 bases → two 32-mer windows; both must match the naive path.
        let bases = parse_bases(&"ACGTACGTACGTACGTACGTACGTACGTACGTA"[..33]).unwrap();
        let rolled: Vec<u64> = canonical_kmers_of(&bases, 32)
            .map(|c| c.kmer.packed())
            .collect();
        let naive: Vec<u64> = kmers_of(&bases, 32)
            .map(|w| w.canonical().kmer.packed())
            .collect();
        assert_eq!(rolled, naive);
        assert_eq!(rolled.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_scanner_matches_naive_canonical(
            s in proptest::collection::vec(0u8..4, 1..60),
            k in 1usize..32,
        ) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let rolled: Vec<(u64, Orientation)> = canonical_kmers_of(&bases, k)
                .map(|c| (c.kmer.packed(), c.orientation))
                .collect();
            let naive: Vec<(u64, Orientation)> = kmers_of(&bases, k)
                .map(|w| {
                    let c = w.canonical();
                    (c.kmer.packed(), c.orientation)
                })
                .collect();
            prop_assert_eq!(rolled, naive);
        }

        #[test]
        fn prop_rc_is_involution(s in proptest::collection::vec(0u8..4, 1..=31)) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let k = Kmer::from_bases(&bases).unwrap();
            prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        }

        #[test]
        fn prop_rc_matches_naive(s in proptest::collection::vec(0u8..4, 1..=31)) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let k = Kmer::from_bases(&bases).unwrap();
            let naive = crate::base::reverse_complement(&bases);
            prop_assert_eq!(k.reverse_complement().to_bases(), naive);
        }

        #[test]
        fn prop_canonical_is_idempotent(s in proptest::collection::vec(0u8..4, 1..=31)) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let k = Kmer::from_bases(&bases).unwrap();
            let c = k.canonical();
            prop_assert!(c.kmer.is_canonical());
            prop_assert_eq!(c.kmer.canonical().kmer, c.kmer);
            // Canonical of the rc is the same vertex.
            prop_assert_eq!(k.reverse_complement().canonical().kmer, c.kmer);
        }

        #[test]
        fn prop_display_roundtrip(s in proptest::collection::vec(0u8..4, 1..=31)) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let k = Kmer::from_bases(&bases).unwrap();
            prop_assert_eq!(Kmer::from_str_exact(&k.to_string()).unwrap(), k);
        }

        #[test]
        fn prop_extend_right_then_prefix(s in proptest::collection::vec(0u8..4, 2..=30), b in 0u8..4) {
            let bases: Vec<Base> = s.iter().map(|c| Base::from_code(*c)).collect();
            let k = Kmer::from_bases(&bases).unwrap();
            let appended = k.append(Base::from_code(b));
            prop_assert_eq!(appended.prefix(), k);
            prop_assert_eq!(appended.suffix(), k.extend_right(Base::from_code(b)));
        }
    }
}
