//! Scalar-fallback toggle for the sequence plane's word-parallel kernels.
//!
//! The hot comparisons of the sequence layer — [`DnaString`] ordering, the
//! canonical-strand pick, reverse complement and contig splicing
//! ([`DnaString::extend_from`]) — all run **word-parallel** over the 2-bit
//! packed representation: 32 bases per `u64` step instead of a decoded
//! base-by-base loop. Every such kernel keeps its portable scalar twin, and
//! this module provides the process-global switch that forces the twins —
//! the sequence-plane mirror of `ppa_pregel::kernels::force_scalar_kernels`
//! (the two crates share no code, only the `PPA_SCALAR_KERNELS` convention,
//! because `ppa_seq` sits below the Pregel layer in the crate graph).
//!
//! Benches flip the switch to measure word-parallel vs. scalar; the CI
//! forced-scalar job sets the `PPA_SCALAR_KERNELS` environment variable
//! (any value but `"0"`) to run the whole test suite on the scalar twins.
//!
//! [`DnaString`]: crate::DnaString
//! [`DnaString::extend_from`]: crate::DnaString::extend_from

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// When `true`, every sequence kernel runs its portable scalar twin.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn env_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var_os("PPA_SCALAR_KERNELS").is_some_and(|v| v != "0"))
}

/// Forces (or releases) the scalar twin of every sequence-plane kernel.
///
/// Process-global; benches and the CI fallback job use it to measure and
/// exercise the scalar paths. The `PPA_SCALAR_KERNELS` environment variable
/// forces scalar independently of this switch.
pub fn force_scalar_kernels(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the scalar twins are currently forced (switch or environment).
pub fn scalar_kernels_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) || env_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_round_trips() {
        // The env var is absent in the normal test run, so the switch is the
        // only input.
        if std::env::var_os("PPA_SCALAR_KERNELS").is_some() {
            assert!(scalar_kernels_forced());
            return;
        }
        assert!(!scalar_kernels_forced());
        force_scalar_kernels(true);
        assert!(scalar_kernels_forced());
        force_scalar_kernels(false);
        assert!(!scalar_kernels_forced());
    }
}
