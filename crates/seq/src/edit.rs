//! Edit (Levenshtein) distance between DNA sequences.
//!
//! Bubble filtering (operation ④ of the paper) prunes a low-coverage contig if
//! its sequence is within a user-defined edit distance of a higher-coverage
//! contig that shares the same two ambiguous end vertices. The distances
//! involved are small (the paper uses a threshold of 5), so a *banded*
//! computation that gives up once the distance provably exceeds the threshold
//! is both sufficient and much cheaper than the full dynamic program.

use crate::DnaString;

/// Full O(n·m) Levenshtein distance between two base sequences.
///
/// Uses two rolling rows so memory is O(min(n, m)).
pub fn edit_distance(a: &DnaString, b: &DnaString) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let n = short.len();
    if n == 0 {
        return long.len();
    }
    let short_bases = short.to_bases();
    let long_bases = long.to_bases();
    let mut prev: Vec<usize> = (0..=n).collect();
    let mut curr = vec![0usize; n + 1];
    for (i, &lb) in long_bases.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sb) in short_bases.iter().enumerate() {
            let cost = usize::from(lb != sb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// Banded edit distance with early exit.
///
/// Returns `Some(d)` if the edit distance `d` between `a` and `b` is at most
/// `max_dist`, and `None` otherwise. Complexity is O(max_dist · max(n, m)).
pub fn banded_edit_distance(a: &DnaString, b: &DnaString, max_dist: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    // A length difference alone already exceeds the band.
    if n.abs_diff(m) > max_dist {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let a_bases = a.to_bases();
    let b_bases = b.to_bases();
    let band = max_dist;
    const INF: usize = usize::MAX / 2;
    // dp over rows of `a` (length n+1), but only within the band around the
    // diagonal.
    let mut prev = vec![INF; m + 1];
    let mut curr = vec![INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        curr.iter_mut().for_each(|v| *v = INF);
        if i <= band {
            curr[0] = i;
        }
        let mut row_min = curr[0];
        for j in lo..=hi {
            let cost = usize::from(a_bases[i - 1] != b_bases[j - 1]);
            let sub = prev[j - 1].saturating_add(cost);
            let del = prev[j].saturating_add(1);
            let ins = curr[j - 1].saturating_add(1);
            let v = sub.min(del).min(ins);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if row_min > max_dist {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[m];
    if d <= max_dist {
        Some(d)
    } else {
        None
    }
}

/// Hamming distance between two equal-length sequences; `None` if lengths differ.
pub fn hamming_distance(a: &DnaString, b: &DnaString) -> Option<usize> {
    if a.len() != b.len() {
        return None;
    }
    Some(a.iter().zip(b.iter()).filter(|(x, y)| x != y).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ds(s: &str) -> DnaString {
        DnaString::from_ascii(s).unwrap()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = ds("ATTGCAAGTC");
        assert_eq!(edit_distance(&a, &a), 0);
        assert_eq!(banded_edit_distance(&a, &a, 0), Some(0));
        assert_eq!(hamming_distance(&a, &a), Some(0));
    }

    #[test]
    fn single_substitution() {
        // Figure 5's bubble: main path spells CAA segment, erroneous read has CTA.
        let a = ds("GCAAG");
        let b = ds("GCTAG");
        assert_eq!(edit_distance(&a, &b), 1);
        assert_eq!(banded_edit_distance(&a, &b, 5), Some(1));
        assert_eq!(hamming_distance(&a, &b), Some(1));
    }

    #[test]
    fn insertion_and_deletion() {
        let a = ds("ACGTACGT");
        let b = ds("ACGACGT");
        assert_eq!(edit_distance(&a, &b), 1);
        assert_eq!(edit_distance(&b, &a), 1);
        assert_eq!(banded_edit_distance(&a, &b, 1), Some(1));
    }

    #[test]
    fn empty_sequences() {
        let e = DnaString::new();
        let a = ds("ACGT");
        assert_eq!(edit_distance(&e, &e), 0);
        assert_eq!(edit_distance(&e, &a), 4);
        assert_eq!(banded_edit_distance(&e, &a, 4), Some(4));
        assert_eq!(banded_edit_distance(&e, &a, 3), None);
        assert_eq!(banded_edit_distance(&e, &e, 0), Some(0));
    }

    #[test]
    fn band_rejects_distant_sequences() {
        let a = ds("AAAAAAAAAA");
        let b = ds("TTTTTTTTTT");
        assert_eq!(edit_distance(&a, &b), 10);
        assert_eq!(banded_edit_distance(&a, &b, 5), None);
    }

    #[test]
    fn length_difference_exceeding_band() {
        let a = ds("ACGT");
        let b = ds("ACGTACGTACGT");
        assert_eq!(banded_edit_distance(&a, &b, 3), None);
        assert_eq!(banded_edit_distance(&a, &b, 8), Some(8));
    }

    #[test]
    fn hamming_requires_equal_length() {
        assert_eq!(hamming_distance(&ds("ACG"), &ds("ACGT")), None);
        assert_eq!(hamming_distance(&ds("ACGT"), &ds("TCGA")), Some(2));
    }

    proptest! {
        #[test]
        fn prop_banded_agrees_with_full(
            a in proptest::collection::vec(0u8..4, 0..60),
            b in proptest::collection::vec(0u8..4, 0..60),
            band in 0usize..20
        ) {
            use crate::base::Base;
            let a = DnaString::from_bases_iter(a.iter().map(|c| Base::from_code(*c)));
            let b = DnaString::from_bases_iter(b.iter().map(|c| Base::from_code(*c)));
            let full = edit_distance(&a, &b);
            match banded_edit_distance(&a, &b, band) {
                Some(d) => prop_assert_eq!(d, full),
                None => prop_assert!(full > band),
            }
        }

        #[test]
        fn prop_metric_axioms(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40)
        ) {
            use crate::base::Base;
            let a = DnaString::from_bases_iter(a.iter().map(|c| Base::from_code(*c)));
            let b = DnaString::from_bases_iter(b.iter().map(|c| Base::from_code(*c)));
            // Symmetry
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            // Identity of indiscernibles
            prop_assert_eq!(edit_distance(&a, &b) == 0, a == b);
            // Bounded by max length
            prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
        }

        #[test]
        fn prop_substitution_upper_bound(
            v in proptest::collection::vec(0u8..4, 1..60),
            idx in 0usize..60,
            newcode in 0u8..4
        ) {
            use crate::base::Base;
            let bases: Vec<Base> = v.iter().map(|c| Base::from_code(*c)).collect();
            let a = DnaString::from_bases(&bases);
            let idx = idx % bases.len();
            let mut mutated = bases.clone();
            mutated[idx] = Base::from_code(newcode);
            let b = DnaString::from_bases(&mutated);
            let d = edit_distance(&a, &b);
            prop_assert!(d <= 1);
            prop_assert_eq!(d == 0, bases[idx] == Base::from_code(newcode));
        }
    }
}
