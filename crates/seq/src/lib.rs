//! DNA sequence primitives for the PPA-assembler workspace.
//!
//! This crate provides the low-level building blocks that every other crate in
//! the workspace relies on:
//!
//! * [`Base`] — the four-letter DNA alphabet with the paper's 2-bit encoding
//!   (`A=00`, `C=01`, `G=10`, `T=11`) and complementation.
//! * [`Kmer`] — a k-mer (k ≤ 31) packed into a single `u64`, supporting
//!   extension, reverse complement and canonicalisation exactly as required by
//!   the de Bruijn graph construction of the paper (Section III / Figure 7a).
//! * [`DnaString`] — an arbitrary-length 2-bit packed DNA sequence used for
//!   contigs and reference genomes (Figure 9's contig bitmap).
//! * FASTA/FASTQ parsing and writing ([`fastx`]).
//! * Banded and full [edit distance](edit) used by bubble filtering.
//!
//! The types here are deliberately free of any Pregel or assembly logic so that
//! the read simulator, the quality assessor and the baselines can share them.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod base;
pub mod dna_string;
pub mod edit;
pub mod error;
pub mod fastx;
pub mod kernels;
pub mod kmer;

pub use base::Base;
pub use dna_string::DnaString;
pub use edit::{banded_edit_distance, edit_distance};
pub use error::SeqError;
pub use fastx::{FastxRecord, ReadSet};
pub use kmer::{CanonicalKmer, Kmer, Orientation};
